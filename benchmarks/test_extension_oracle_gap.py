"""Extension bench — PBPL vs an online EDF baseline vs the clairvoyant
optimum of the paper's objective (Eq. 4).

The paper never measures how close PBPL gets to the *minimum possible*
number of wakeups. Here we compute that minimum exactly (offline
interval piercing over the same traces, deadlines and buffers — see
``repro.core.oracle``) and place two online algorithms against it:

* **PBPL** — the paper's contribution (prediction + slots + latching);
* **EDF**  — a prediction-free earliest-deadline batcher with shared
  drains (``repro.impls.edf``), the baseline the paper omits.

Expected shape: oracle ≤ both online algorithms; both land within a
small multiple of the optimum; EDF — with no prediction machinery at
all — is competitive with PBPL, which is an honest data point about how
much of PBPL's design the slot/prediction machinery actually carries.
"""

from repro.core import PBPLSystem, optimal_wakeups
from repro.harness import render_table
from repro.harness.runner import CONSUMER_CORE, Rig
from repro.impls import EDFBatchSystem, phase_shifted_traces

N_CONSUMERS = 5


def run_point(params, kind, replicate):
    rig = Rig.build(params, replicate)
    traces = phase_shifted_traces(params.trace(rig.streams), N_CONSUMERS)
    if kind == "PBPL":
        system = PBPLSystem(
            rig.env,
            rig.machine,
            traces,
            params.pbpl_config(),
            consumer_cores=[CONSUMER_CORE],
        ).start()
    elif kind == "EDF":
        system = EDFBatchSystem(
            rig.env,
            rig.machine,
            traces,
            params.pc_config(),
            consumer_cores=[CONSUMER_CORE],
        ).start()
    else:  # the clairvoyant bound needs no simulation at all
        result = optimal_wakeups(
            traces, params.max_response_latency_s, params.buffer_size
        )
        return {
            "wakeups_per_s": result.wakeups / params.duration_s,
            "power_mw": float("nan"),
            "consumed": result.total_items,
        }
    rig.env.run(until=params.duration_s)
    measured_w, _ = rig.measure_power_w(params.duration_s)
    agg = system.aggregate_stats()
    return {
        "wakeups_per_s": rig.machine.core(CONSUMER_CORE).total_wakeups
        / params.duration_s,
        "power_mw": measured_w * 1000,
        "consumed": agg.consumed,
    }


def average(points):
    return {k: sum(p[k] for p in points) / len(points) for k in points[0]}


def test_oracle_gap(benchmark, bench_params, save_result):
    def grid():
        return {
            kind: average(
                [
                    run_point(bench_params, kind, r)
                    for r in range(bench_params.replicates)
                ]
            )
            for kind in ("oracle", "PBPL", "EDF")
        }

    results = benchmark.pedantic(grid, rounds=1, iterations=1)
    oracle_w = results["oracle"]["wakeups_per_s"]
    rows = [
        (
            kind,
            f"{p['wakeups_per_s']:.0f}",
            f"{p['wakeups_per_s'] / oracle_w:.2f}x"
            if oracle_w
            else "n/a",
            "-" if kind == "oracle" else f"{p['power_mw']:.1f}",
        )
        for kind, p in results.items()
    ]
    table = render_table(
        ["algorithm", "wakeups/s", "vs optimum", "power mW"],
        rows,
        title=f"Extension — distance from the Eq. 4 optimum "
        f"({N_CONSUMERS} consumers, buffer {bench_params.buffer_size}, "
        f"L = {bench_params.max_response_latency_s * 1000:g} ms)",
    )
    save_result("extension_oracle_gap", table)

    # The bound is a bound.
    assert results["PBPL"]["wakeups_per_s"] >= oracle_w * 0.999
    assert results["EDF"]["wakeups_per_s"] >= oracle_w * 0.999
    # Both online algorithms stay within a small multiple of optimal.
    assert results["PBPL"]["wakeups_per_s"] < 6 * oracle_w
    assert results["EDF"]["wakeups_per_s"] < 6 * oracle_w
    # Both actually do the work.
    assert results["PBPL"]["consumed"] > 0
    assert results["EDF"]["consumed"] > 0
