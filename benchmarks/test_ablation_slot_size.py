"""Ablation — slot size Δ (design choice, paper §V-A).

"Achieving this objective for an appropriately sized Δ would result in
a decrease in the number of wakeups." This bench shows what
"appropriately sized" means — the wakeups/power curve is U-shaped in Δ:

* too fine a grid lets the greedy per-item cost ρ (Eq. 8) latch onto
  very-near slots — cheap per item, but each early drain shrinks the
  sized buffer and forces another wake soon (a genuine second-order
  blind spot of Eq. 8 that the paper's coarse default Δ hides);
* too coarse a grid floors latency and converts bursts into overflow
  wakes;
* the calibrated default sits near the knee.
"""

from repro.harness import render_table, run_multi
from repro.metrics import summarise

SLOTS_MS = (1.0, 2.5, 5.0, 10.0, 20.0)


def run_variant(params, slot_ms):
    runs = [
        run_multi(
            "PBPL",
            5,
            params,
            rep,
            pbpl_overrides={"slot_size_s": slot_ms * 1e-3},
        )
        for rep in range(params.replicates)
    ]
    return summarise(runs)


def test_ablation_slot_size(benchmark, bench_params, save_result):
    results = benchmark.pedantic(
        lambda: {ms: run_variant(bench_params, ms) for ms in SLOTS_MS},
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            f"Δ = {ms:g} ms",
            f"{s.mean('core_wakeups_per_s'):.0f}",
            f"{s.mean('power_w') * 1000:.1f}",
            f"{s.mean('p99_latency_s') * 1000:.1f}",
            f"{s.mean('overflow_wakeups'):.0f}",
        )
        for ms, s in results.items()
    ]
    table = render_table(
        ["slot size", "core wakeups/s", "power mW", "p99 latency ms", "overflows"],
        rows,
        title="Ablation — slot size Δ (5 consumers, buffer 25)",
    )
    save_result("ablation_slot_size", table)

    # The U-shape: both extremes wake (and draw) more than the middle.
    mid = min(results[ms].mean("core_wakeups_per_s") for ms in (5.0, 10.0))
    assert results[1.0].mean("core_wakeups_per_s") > 2 * mid
    assert results[20.0].mean("core_wakeups_per_s") > mid
    mid_power = min(results[ms].mean("power_w") for ms in (5.0, 10.0))
    assert results[1.0].mean("power_w") > mid_power
    assert results[20.0].mean("power_w") > mid_power
    # The deadline bound holds at every Δ (p99 within L = 40 ms).
    for ms, s in results.items():
        assert s.mean("p99_latency_s") < 40e-3, ms
