"""Ablation — dynamic buffer resizing (design choice, paper §V-C).

Resizing exists for *heterogeneous* consumers: "the unused space in the
buffer is granted to consumers suffering from a high production rate,
so that they can maintain their latching duties". Under a homogeneous
load every consumer wants the same thing and the pool has no slack to
move around — so this ablation uses the workload the mechanism is for:
one hot stream next to cool ones. With resizing frozen, the hot
consumer overflows its fixed B0 constantly; elastic walls let it borrow
what its neighbours never use.
"""

from repro.buffers import GlobalBufferPool  # noqa: F401  (doc pointer)
from repro.core import PBPLConfig, PBPLSystem
from repro.harness import render_table
from repro.harness.runner import CONSUMER_CORE, Rig
from repro.workloads import mmpp_trace, poisson_trace


def run_variant(params, enable_resizing, replicate):
    rig = Rig.build(params, replicate)
    duration = params.duration_s
    streams = rig.streams
    traces = [
        # The hot stream: bursts far beyond B0 per slot.
        mmpp_trace([2500.0, 12000.0], [0.4, 0.2], duration, streams.stream("hot")),
        poisson_trace(400.0, duration, streams.stream("cool-1")),
        poisson_trace(300.0, duration, streams.stream("cool-2")),
        poisson_trace(100.0, duration, streams.stream("cool-3")),
        poisson_trace(50.0, duration, streams.stream("cool-4")),
    ]
    system = PBPLSystem(
        rig.env,
        rig.machine,
        traces,
        params.pbpl_config(enable_resizing=enable_resizing),
        consumer_cores=[CONSUMER_CORE],
    ).start()
    rig.env.run(until=duration)
    agg = system.aggregate_stats()
    return {
        "overflow": agg.overflow_wakeups,
        "scheduled": agg.scheduled_wakeups,
        "avg_buffer": system.average_buffer_capacity(),
        "hot_buffer": system.consumers[0].average_buffer_capacity(),
        "core_wakeups": rig.machine.core(CONSUMER_CORE).total_wakeups / duration,
    }


def average(dicts):
    keys = dicts[0].keys()
    return {k: sum(d[k] for d in dicts) / len(dicts) for k in keys}


def test_ablation_resizing(benchmark, bench_params, save_result):
    def grid():
        on = average(
            [run_variant(bench_params, True, r) for r in range(bench_params.replicates)]
        )
        off = average(
            [run_variant(bench_params, False, r) for r in range(bench_params.replicates)]
        )
        return on, off

    on, off = benchmark.pedantic(grid, rounds=1, iterations=1)
    table = render_table(
        ["variant", "overflow wakeups", "hot buffer", "avg buffer", "core wakeups/s"],
        [
            (
                "resizing ON",
                f"{on['overflow']:.0f}",
                f"{on['hot_buffer']:.1f}",
                f"{on['avg_buffer']:.1f}",
                f"{on['core_wakeups']:.0f}",
            ),
            (
                "resizing OFF",
                f"{off['overflow']:.0f}",
                f"{off['hot_buffer']:.1f}",
                f"{off['avg_buffer']:.1f}",
                f"{off['core_wakeups']:.0f}",
            ),
        ],
        title="Ablation — dynamic buffer resizing (1 hot + 4 cool streams)",
    )
    save_result("ablation_resizing", table)

    # The hot consumer borrows beyond its base allocation…
    assert on["hot_buffer"] > bench_params.buffer_size
    # …which absorbs bursts that frozen buffers pay for in overflows…
    assert on["overflow"] < off["overflow"]
    # …and in total core wakeups.
    assert on["core_wakeups"] < off["core_wakeups"] * 1.02
