"""Extension bench — the §VIII resource-aware generalisation's Pareto front.

The paper closes by asking for "a generic resource-aware
producer-consumer algorithm, where power, memory, CPU overhead,
throughput, timing, constraints, etc., need to be taken into account
simultaneously". `repro.core.resource_aware` builds it; this bench
walks the power↔latency exchange axis and prints the front an operator
would tune against. Expected shape: latency falls and power rises
monotonically(-ish) with latency emphasis, with pure power weighting
(emphasis 0) identical to stock PBPL.
"""

from repro.core import ResourceAwareSystem, pareto_weights
from repro.harness import render_table
from repro.harness.runner import CONSUMER_CORE, Rig
from repro.impls import phase_shifted_traces

EMPHASES = (0.0, 0.25, 0.5, 0.75, 1.0)


def run_point(params, emphasis, replicate):
    rig = Rig.build(params, replicate)
    traces = phase_shifted_traces(params.trace(rig.streams), 5)
    from repro.core import ResourceAwareConfig

    config = ResourceAwareConfig(
        buffer_size=params.buffer_size,
        slot_size_s=params.slot_size_s,
        max_response_latency_s=params.max_response_latency_s,
        batch_period_s=params.slot_size_s,
        weights=pareto_weights(emphasis),
    )
    system = ResourceAwareSystem(
        rig.env, rig.machine, traces, config, consumer_cores=[CONSUMER_CORE]
    ).start()
    rig.env.run(until=params.duration_s)
    measured_w, _ = rig.measure_power_w(params.duration_s)
    agg = system.aggregate_stats()
    return {
        "power_w": measured_w,
        "mean_latency_s": agg.mean_latency_s,
        "wakeups": rig.machine.core(CONSUMER_CORE).total_wakeups
        / params.duration_s,
    }


def average(points):
    keys = points[0].keys()
    return {k: sum(p[k] for p in points) / len(points) for k in keys}


def test_resource_aware_pareto_front(benchmark, bench_params, save_result):
    def sweep():
        return {
            e: average(
                [run_point(bench_params, e, r) for r in range(bench_params.replicates)]
            )
            for e in EMPHASES
        }

    front = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (
            f"{e:.2f}",
            f"{p['power_w'] * 1000:.1f}",
            f"{p['mean_latency_s'] * 1000:.2f}",
            f"{p['wakeups']:.0f}",
        )
        for e, p in front.items()
    ]
    table = render_table(
        ["latency emphasis", "power mW", "mean latency ms", "wakeups/s"],
        rows,
        title="Extension — resource-aware Pareto front (5 consumers)",
    )
    save_result("ablation_resource_weights", table)

    # End-to-end: full latency emphasis cuts mean latency substantially…
    assert front[1.0]["mean_latency_s"] < 0.75 * front[0.0]["mean_latency_s"]
    # …monotonically along the axis (at endpoint/midpoint granularity)…
    assert (
        front[1.0]["mean_latency_s"]
        <= front[0.5]["mean_latency_s"]
        <= front[0.0]["mean_latency_s"]
    )
    # …and, the notable finding: at the calibrated slot size the wakeup/
    # power bill stays within a few percent — *latching absorbs the cost
    # of earlier drains* because they are shared. The trade-off is real
    # (it appears at fine slot grids, cf. the slot-size ablation), but
    # group latching pays most of it.
    assert abs(front[1.0]["power_w"] / front[0.0]["power_w"] - 1) < 0.05
    assert front[1.0]["wakeups"] < front[0.0]["wakeups"] * 1.25
