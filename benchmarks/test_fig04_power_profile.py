"""Figure 4 — power (log-scale bars) for the seven implementations,
plus the §III-C correlation/significance analysis.

Paper shape asserted:
* BW draws the most by a wide margin; Yield sits at or below BW;
* every batch implementation beats Mutex and Sem (paper: batch saves up
  to 80 % vs BW and ~33 % vs Mutex — our isolated-mechanism model gives
  larger factors, same ordering);
* across the blocking five, wakeups/s correlates strongly and
  positively with power, and the paper's H0 ("wakeups have a
  significant effect on power") is accepted at 99 %.
"""


def test_fig04_power_ordering_and_stats(benchmark, profile_study, save_result):
    result = benchmark.pedantic(lambda: profile_study, rounds=1, iterations=1)
    save_result("fig04_stats", result.render())
    s = result.summaries

    power = {name: s[name].mean("power_w") for name in s}

    # BW is the ceiling; batch is the floor.
    assert power["BW"] >= power["Yield"]
    assert power["BW"] > 2 * power["Mutex"]
    for batch in ("BP", "PBP", "SPBP"):
        assert power[batch] < power["Mutex"], batch
        assert power[batch] < power["Sem"], batch

    # Paper: batch up to -80% vs BW; ≥ -33% vs Mutex (ours exceeds both).
    assert result.power_reduction_pct("BW", "SPBP") < -70
    assert result.power_reduction_pct("Mutex", "SPBP") < -25

    # Mutex slightly above Sem (condvar overhead vs bare semaphores).
    assert power["Mutex"] >= power["Sem"]

    # §III-C statistics.
    assert result.corr_wakeups_power_blocking > 0.5  # paper: +74%
    assert result.significance.significant(0.99)  # paper: accepted at 99%
