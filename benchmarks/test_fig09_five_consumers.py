"""Figure 9 — Mutex/Sem/BP/PBPL at 5 consumers, buffer 25.

Paper shape asserted:
* wakeups/s directly tracks power across the four implementations;
* PBPL has the fewest wakeup events and the lowest power;
* PBPL beats Mutex by a wide margin (paper: −39.5 % wakeups, −20 %
  power; our isolated-mechanism model exaggerates the Mutex side) and
  BP by a moderate one (paper: −37.8 % wakeups, −7.4 % power — both
  reproduced within a few points).
"""

from repro.harness import run_multi_comparison
from repro.metrics import pearson


def test_fig09_five_consumers(benchmark, bench_params, save_result):
    result = benchmark.pedantic(
        lambda: run_multi_comparison(bench_params, n_consumers=5),
        rounds=1,
        iterations=1,
    )
    save_result("fig09_five_consumers", result.render())
    s = result.summaries

    # Wakeups ↔ power move together across the four implementations.
    names = list(result.implementations)
    wakeups = [s[n].mean("core_wakeups_per_s") for n in names]
    power = [s[n].mean("power_w") for n in names]
    assert pearson(wakeups, power) > 0.9

    # PBPL wins on both axes.
    for other in ("Mutex", "Sem", "BP"):
        assert s["PBPL"].mean("core_wakeups_per_s") < s[other].mean(
            "core_wakeups_per_s"
        ), other
        assert s["PBPL"].mean("power_w") < s[other].mean("power_w"), other

    # Factors: ≥30% fewer wakeup events than Mutex (paper: 39.5%) and
    # ≥20% fewer than BP (paper: 37.8%).
    assert result.reduction_pct("core_wakeups_per_s", "Mutex", "PBPL") < -30
    assert result.reduction_pct("core_wakeups_per_s", "BP", "PBPL") < -20
    # Power vs BP lands near the paper's -7.4%.
    assert -20 < result.reduction_pct("power_w", "BP", "PBPL") < 0
