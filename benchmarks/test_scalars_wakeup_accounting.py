"""§VI-C in-text scalars ("Table S1") — PBPL's internal wakeup accounting.

The paper reports, averaged over its runs: PBPL scores 5160 scheduled
wakeups and 1626 buffer overflows versus BP's 9290 overflow-only
wakeups — a 25 % total reduction and an 82.5 % overflow-conversion
rate — and, with a 50-slot allocation, an average buffer size of 43.

Shape asserted (at the paper's evaluation buffer size, B0 = 25, where
the comparison is meaningful; the average-buffer metric uses B0 = 50
like the paper's quote):
* scheduled wakeups dominate overflows for PBPL (paper: 76 % / 24 %);
* PBPL's total batch wakeups undercut BP's overflow-only total
  (paper: −25 %);
* a majority of BP's overflows are converted/eliminated (paper: 82.5 %);
* the average dynamic buffer sits below, but near, the allocation.
"""

from repro.harness import run_wakeup_accounting


def test_scalar_wakeup_accounting(benchmark, bench_params, save_result):
    acc25 = benchmark.pedantic(
        lambda: run_wakeup_accounting(bench_params, buffer_size=25),
        rounds=1,
        iterations=1,
    )
    acc50 = run_wakeup_accounting(bench_params, buffer_size=50)
    save_result(
        "scalars_wakeup_accounting",
        acc25.render() + "\n\n" + acc50.render(),
    )

    # Scheduled wakeups dominate (paper: 5160 vs 1626 → 76%/24%).
    assert acc25.pbpl.mean("scheduled_wakeups") > acc25.pbpl.mean(
        "overflow_wakeups"
    )

    # Total batch wakeups: PBPL < BP (paper: -25%).
    assert acc25.total_reduction_pct < -10

    # Overflow conversion: most of BP's overflows disappear (paper: 82.5%).
    assert acc25.overflow_conversion_pct > 50

    # Average buffer below but near the allocation (paper: 43/50 = 0.86).
    ratio = acc50.pbpl.mean("average_buffer_size") / 50
    assert 0.6 < ratio <= 1.0
