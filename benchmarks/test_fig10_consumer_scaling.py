"""Figure 10 — sweeping the number of consumers (2, 5, 10).

Paper shape asserted:
* power rises with consumer count for every implementation (more work);
* PBPL's advantage *grows* with the number of consumers — the paper's
  scalability headline ("it prospers when there are more consumers and
  more possibilities for latching"): at 2 consumers PBPL may even lose
  to BP (nothing to latch onto), by 10 it clearly wins;
* PBPL's wakeups grow sublinearly with consumers while BP's grow
  roughly linearly.

Known deviation (documented in EXPERIMENTS.md): the paper also reports
absolute wakeups/s *falling* at higher consumer counts because their
consumer core saturates; our standard workload keeps the core well
under saturation, so wakeups rise with load. The saturation ablation
benchmark reproduces the falling-wakeups effect separately.
"""

from repro.harness import run_consumer_scaling


def test_fig10_consumer_scaling(benchmark, bench_params, save_result):
    result = benchmark.pedantic(
        lambda: run_consumer_scaling(bench_params, counts=(2, 5, 10)),
        rounds=1,
        iterations=1,
    )
    save_result("fig10_consumer_scaling", result.render())

    # Power rises with consumer count for every implementation.
    for name in ("Mutex", "Sem", "BP", "PBPL"):
        series = [
            result.cells[n].summaries[name].mean("power_w") for n in (2, 5, 10)
        ]
        assert series[0] < series[1] < series[2], name

    # PBPL's power advantage over BP grows with consumer count.
    def pbpl_vs_bp(n):
        c = result.cells[n].summaries
        return 1 - c["PBPL"].mean("power_w") / c["BP"].mean("power_w")

    gaps = [pbpl_vs_bp(n) for n in (2, 5, 10)]
    assert gaps[0] < gaps[1] < gaps[2]
    assert gaps[2] > 0  # clearly ahead at 10 consumers

    # Latching scalability: PBPL wakeups grow far slower than BP's.
    def growth(name):
        c2 = result.cells[2].summaries[name].mean("core_wakeups_per_s")
        c10 = result.cells[10].summaries[name].mean("core_wakeups_per_s")
        return c10 / c2

    assert growth("PBPL") < 0.6 * growth("BP")

    # And the improvement over Mutex is large at scale (paper: 30% at 10;
    # our wakeup-dominated model gives more).
    assert result.improvement_over_mutex(10) > 30
