"""Behavioural tests for the full PBPL system (consumer + manager + pool)."""

import numpy as np
import pytest

from repro.cpu import Machine
from repro.core import PBPLConfig, PBPLSystem
from repro.impls import MultiPairSystem, PCConfig, phase_shifted_traces
from repro.power import EnergyLedger, PowerModel
from repro.sim import Environment, RandomStreams
from repro.workloads import Trace, worldcup_like_trace


def regular_trace(rate, duration, phase=0.0):
    gap = 1.0 / rate
    times = np.arange(gap + phase * gap, duration, gap)
    times = times[times < duration]
    return Trace(times, duration, f"regular({rate})")


def build(traces, config=None, seed=0, n_cores=1, consumer_cores=None):
    env = Environment()
    machine = Machine(env, n_cores=n_cores, streams=RandomStreams(seed=seed))
    model = PowerModel()
    ledger = EnergyLedger(env, model)
    machine.add_listener(ledger)
    for core in machine.cores:
        ledger.watch(core)
    system = PBPLSystem(
        env,
        machine,
        traces,
        config or PBPLConfig(buffer_size=25, slot_size_s=5e-3),
        consumer_cores=consumer_cores,
    ).start()
    return env, machine, ledger, system


def test_pbpl_conserves_items():
    traces = [regular_trace(500.0, 2.0, phase=i / 3) for i in range(3)]
    env, machine, ledger, system = build(traces)
    env.run(until=2.0)
    agg = system.aggregate_stats()
    buffered = sum(len(c.buffer) for c in system.consumers)
    inflight = sum(c.in_flight for c in system.consumers)
    assert agg.produced == sum(t.n_items for t in traces)
    assert agg.produced == agg.consumed + buffered + inflight


def test_pbpl_consumes_in_batches():
    traces = [regular_trace(500.0, 2.0)]
    env, machine, ledger, system = build(traces)
    env.run(until=2.0)
    stats = system.consumers[0].stats
    assert stats.consumed > 0
    # ~2.5 items per 5 ms slot: far fewer invocations than items.
    assert stats.invocations < stats.consumed / 2


def test_pbpl_meets_response_latency_mostly():
    traces = [regular_trace(500.0, 2.0)]
    env, machine, ledger, system = build(traces)
    env.run(until=2.0)
    stats = system.consumers[0].stats
    # Slot size (5 ms) is half the deadline (10 ms): a steady trace
    # should essentially never miss.
    assert stats.deadline_misses <= stats.consumed * 0.01


def test_pbpl_latching_groups_invocations():
    """Paper Fig. 6: consumers align to shared slots, so one core wakeup
    serves several consumers."""
    traces = [regular_trace(400.0 + 100 * i, 2.0, phase=i / 5) for i in range(5)]
    env, machine, ledger, system = build(traces)
    env.run(until=2.0)
    scheduled = sum(m.scheduled_wakeups for m in system.managers.values())
    activations = system.total_activations
    assert scheduled > 0
    # Latching factor: strictly more activations than slot wakes.
    assert activations > 1.5 * scheduled


def test_pbpl_fewer_core_wakeups_than_independent_bp():
    """The headline: grouped slot wakeups beat per-pair buffer-full
    wakeups (Fig. 6 / Fig. 9 direction)."""

    def run(kind):
        env = Environment()
        machine = Machine(env, n_cores=1, streams=RandomStreams(seed=1))
        base = worldcup_like_trace(
            2200.0,
            3.0,
            RandomStreams(seed=1).stream("trace"),
            flash_magnitude=4.0,
            flash_decay_fraction=0.15,
            micro_burst_cv=0.3,
        )
        traces = phase_shifted_traces(base, 5)
        if kind == "PBPL":
            PBPLSystem(
                env, machine, traces, PBPLConfig(buffer_size=25, slot_size_s=5e-3)
            ).start()
        else:
            MultiPairSystem(
                env, machine, kind, traces, PCConfig(buffer_size=25)
            ).start()
        env.run(until=3.0)
        return machine.core(0).total_wakeups

    assert run("PBPL") < run("BP")
    assert run("PBPL") < run("Mutex") / 5


def test_pbpl_scheduled_wakeups_dominate_overflows():
    """Paper §VI-C: most wakeups are scheduled (their run: 76 % / 24 %)."""
    base = worldcup_like_trace(
        2200.0,
        3.0,
        RandomStreams(seed=2).stream("trace"),
        flash_magnitude=4.0,
        flash_decay_fraction=0.15,
        micro_burst_cv=0.3,
    )
    traces = phase_shifted_traces(base, 5)
    env, machine, ledger, system = build(traces)
    env.run(until=3.0)
    agg = system.aggregate_stats()
    assert agg.scheduled_wakeups > agg.overflow_wakeups


def test_pbpl_dynamic_resizing_tracks_rate():
    """A fast producer's buffer grows beyond B0 by borrowing; a slow
    producer's shrinks below B0."""
    # 6000/s needs ~45 slots per 5 ms slot — beyond B0=25, so the fast
    # consumer must borrow from the pool space the slow one releases.
    traces = [regular_trace(6000.0, 2.0), regular_trace(50.0, 2.0)]
    env, machine, ledger, system = build(
        traces, PBPLConfig(buffer_size=25, slot_size_s=5e-3)
    )
    env.run(until=2.0)
    fast, slow = system.consumers
    assert fast.average_buffer_capacity() > 25
    assert slow.average_buffer_capacity() < 25
    system.pool.check_invariant()


def test_pbpl_resizing_disabled_keeps_b0():
    traces = [regular_trace(3000.0, 1.0), regular_trace(50.0, 1.0)]
    env, machine, ledger, system = build(
        traces,
        PBPLConfig(buffer_size=25, slot_size_s=5e-3, enable_resizing=False),
    )
    env.run(until=1.0)
    for c in system.consumers:
        assert c.buffer.capacity == 25


def test_pbpl_latching_disabled_still_correct():
    traces = [regular_trace(500.0, 1.0, phase=i / 3) for i in range(3)]
    env, machine, ledger, system = build(
        traces,
        PBPLConfig(buffer_size=25, slot_size_s=5e-3, enable_latching=False),
    )
    env.run(until=1.0)
    agg = system.aggregate_stats()
    buffered = sum(len(c.buffer) for c in system.consumers)
    inflight = sum(c.in_flight for c in system.consumers)
    assert agg.produced == agg.consumed + buffered + inflight


def test_pbpl_multicore_split():
    traces = [regular_trace(500.0, 1.0, phase=i / 4) for i in range(4)]
    env, machine, ledger, system = build(
        traces, n_cores=2, consumer_cores=[0, 1]
    )
    env.run(until=1.0)
    assert len(system.managers) == 2
    assert machine.core(0).total_busy_s > 0
    assert machine.core(1).total_busy_s > 0
    agg = system.aggregate_stats()
    assert agg.consumed > 0


def test_pbpl_kalman_predictor_runs():
    traces = [regular_trace(500.0, 1.0)]
    env, machine, ledger, system = build(
        traces, PBPLConfig(buffer_size=25, slot_size_s=5e-3, predictor="kalman")
    )
    env.run(until=1.0)
    assert system.consumers[0].stats.consumed > 0


def test_pbpl_needs_traces():
    env = Environment()
    machine = Machine(env, n_cores=1)
    with pytest.raises(ValueError, match="at least one trace"):
        PBPLSystem(env, machine, [])


def test_pbpl_average_buffer_close_to_b0_on_steady_load():
    """Paper §VI-C: with B0=50 the measured average was 43 — dynamic
    resizing holds the working size somewhat below the allocation."""
    base = worldcup_like_trace(
        2200.0,
        3.0,
        RandomStreams(seed=3).stream("trace"),
        flash_magnitude=4.0,
        flash_decay_fraction=0.15,
        micro_burst_cv=0.3,
    )
    traces = phase_shifted_traces(base, 5)
    env, machine, ledger, system = build(
        traces, PBPLConfig(buffer_size=50, slot_size_s=5e-3)
    )
    env.run(until=3.0)
    avg = system.average_buffer_capacity()
    assert 10 < avg < 50  # below the allocation, not collapsed


def test_pbpl_no_wakeups_when_nothing_produced():
    empty = Trace(np.array([]), 2.0, "empty")
    env, machine, ledger, system = build([empty])
    env.run(until=2.0)
    # One idle consumer re-reserving empty slots: the manager still
    # fires its reserved slots (the consumer cannot know the producer
    # is silent), but there must be no overflow wakes and no items.
    agg = system.aggregate_stats()
    assert agg.consumed == 0
    assert agg.overflow_wakeups == 0
