"""Tests for the clairvoyant wakeup oracle (Eq. 4's offline optimum)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import optimal_wakeups, verify_schedule
from repro.workloads import Trace


def trace_of(times, duration=10.0):
    return Trace(np.asarray(sorted(times), dtype=float), duration)


# -- hand-checkable instances ---------------------------------------------------


def test_empty_traces_need_no_wakeups():
    result = optimal_wakeups([trace_of([])], 1.0, 10)
    assert result.wakeups == 0
    assert result.total_items == 0


def test_single_item_single_wakeup_at_deadline():
    result = optimal_wakeups([trace_of([2.0])], 1.0, 10)
    assert result.wakeup_times == [pytest.approx(3.0)]


def test_items_within_latency_window_share_one_wakeup():
    # All three fit in one [t, t+L] stab at time 2.5.
    result = optimal_wakeups([trace_of([1.5, 2.0, 2.5])], 1.0, 10)
    assert result.wakeups == 1
    assert result.wakeup_times[0] == pytest.approx(2.5)


def test_spread_items_need_multiple_wakeups():
    result = optimal_wakeups([trace_of([0.0, 5.0])], 1.0, 10)
    assert result.wakeups == 2


def test_two_consumers_latch_on_shared_wakeup():
    # Different consumers, overlapping windows: one stab suffices.
    a = trace_of([1.0])
    b = trace_of([1.5])
    result = optimal_wakeups([a, b], 1.0, 10)
    assert result.wakeups == 1


def test_buffer_forces_earlier_wakeups():
    # Large latency but a 2-slot buffer: the 3rd arrival forces a drain
    # at its own instant (the overflow-trigger semantics), so groups of
    # three form around each forced wake: {.1,.2,.3} and {.4,.5,.6}.
    times = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6]
    loose = optimal_wakeups([trace_of(times)], 100.0, 10)
    tight = optimal_wakeups([trace_of(times)], 100.0, 2)
    assert loose.wakeups == 1
    assert tight.wakeups == 2
    assert tight.wakeup_times == [pytest.approx(0.3), pytest.approx(0.6)]


def test_validation():
    with pytest.raises(ValueError):
        optimal_wakeups([], 1.0, 10)
    with pytest.raises(ValueError):
        optimal_wakeups([trace_of([1.0])], 0.0, 10)
    with pytest.raises(ValueError):
        optimal_wakeups([trace_of([1.0])], 1.0, 0)
    with pytest.raises(ValueError):
        optimal_wakeups([trace_of([1.0]), trace_of([2.0])], 1.0, [5])


# -- feasibility & optimality properties -----------------------------------------


@st.composite
def random_instances(draw):
    n_consumers = draw(st.integers(1, 3))
    traces = []
    for _ in range(n_consumers):
        n = draw(st.integers(0, 40))
        # Unique arrivals: a bounded buffer cannot model several items
        # landing at the same instant (measure-zero for real traces).
        times = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=9.99),
                    min_size=n,
                    max_size=n,
                    unique=True,
                )
            )
        )
        traces.append(trace_of(times))
    latency = draw(st.floats(min_value=0.05, max_value=3.0))
    buffer = draw(st.integers(1, 8))
    return traces, latency, buffer


@given(instance=random_instances())
@settings(max_examples=200, deadline=None)
def test_oracle_schedule_is_always_feasible(instance):
    traces, latency, buffer = instance
    result = optimal_wakeups(traces, latency, buffer)
    assert verify_schedule(traces, result.wakeup_times, latency, buffer)


@given(instance=random_instances())
@settings(max_examples=150, deadline=None)
def test_oracle_matches_interval_stabbing_when_buffers_never_bind(instance):
    """With unbounded buffers the problem is pure interval stabbing,
    whose optimum has a well-known independent greedy solution — the
    oracle must agree with it exactly."""
    traces, latency, _buffer = instance
    intervals = [
        (t, t + latency) for trace in traces for t in trace.times.tolist()
    ]
    stabs = 0
    current = -float("inf")
    for start, end in sorted(intervals, key=lambda it: it[1]):
        if start > current:
            stabs += 1
            current = end
    unconstrained = optimal_wakeups(traces, latency, 10**6)
    assert unconstrained.wakeups == stabs
    # And the buffer-constrained optimum can only need more stabs.
    constrained = optimal_wakeups(traces, latency, _buffer)
    assert constrained.wakeups >= stabs


@given(instance=random_instances())
@settings(max_examples=150, deadline=None)
def test_buffer_constraints_never_reduce_wakeups(instance):
    traces, latency, buffer = instance
    tight = optimal_wakeups(traces, latency, buffer)
    loose = optimal_wakeups(traces, latency, 10**6)
    assert tight.wakeups >= loose.wakeups


@given(instance=random_instances())
@settings(max_examples=100, deadline=None)
def test_more_latency_never_costs_wakeups(instance):
    traces, latency, buffer = instance
    short = optimal_wakeups(traces, latency, buffer)
    long = optimal_wakeups(traces, latency * 2, buffer)
    assert long.wakeups <= short.wakeups
