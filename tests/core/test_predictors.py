"""Unit and property tests for the rate predictors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EWMA, Kalman, MovingAverage, PREDICTORS, make_predictor

rates = st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50)


@pytest.fixture(params=sorted(PREDICTORS))
def predictor(request):
    return make_predictor(request.param)


# -- interface contracts ------------------------------------------------------


def test_predict_none_before_observations(predictor):
    assert predictor.predict() is None


def test_reset_forgets_history(predictor):
    predictor.observe(100.0)
    predictor.reset()
    assert predictor.predict() is None


def test_negative_rate_rejected(predictor):
    with pytest.raises(ValueError):
        predictor.observe(-1.0)


@given(data=rates)
@settings(max_examples=100, deadline=None)
def test_prediction_within_observed_range_ma(data):
    p = MovingAverage(window=8)
    for r in data:
        p.observe(r)
    pred = p.predict()
    assert min(data[-8:]) - 1e-9 <= pred <= max(data[-8:]) + 1e-9


@given(data=rates)
@settings(max_examples=100, deadline=None)
def test_prediction_within_observed_range_ewma(data):
    p = EWMA(alpha=0.3)
    for r in data:
        p.observe(r)
    assert min(data) - 1e-9 <= p.predict() <= max(data) + 1e-9


@given(data=rates)
@settings(max_examples=100, deadline=None)
def test_kalman_prediction_nonnegative(data):
    p = Kalman()
    for r in data:
        p.observe(r)
    assert p.predict() >= 0


# -- MovingAverage specifics (the paper's estimator) ----------------------------


def test_ma_is_the_mean_of_the_window():
    p = MovingAverage(window=3)
    for r in (10.0, 20.0, 30.0, 40.0):
        p.observe(r)
    assert p.predict() == pytest.approx(30.0)  # mean of last 3


def test_ma_before_window_full_uses_available():
    p = MovingAverage(window=8)
    p.observe(10.0)
    p.observe(20.0)
    assert p.predict() == pytest.approx(15.0)


def test_ma_window_validation():
    with pytest.raises(ValueError):
        MovingAverage(window=0)


# -- EWMA specifics -----------------------------------------------------------


def test_ewma_recurrence():
    p = EWMA(alpha=0.5)
    p.observe(100.0)
    p.observe(0.0)
    assert p.predict() == pytest.approx(50.0)
    p.observe(50.0)
    assert p.predict() == pytest.approx(50.0)


def test_ewma_alpha_validation():
    with pytest.raises(ValueError):
        EWMA(alpha=0.0)
    with pytest.raises(ValueError):
        EWMA(alpha=1.5)


# -- Kalman specifics -----------------------------------------------------------


def test_kalman_converges_to_constant_rate():
    p = Kalman(process_var=1.0, measurement_var=100.0)
    for _ in range(200):
        p.observe(500.0)
    assert p.predict() == pytest.approx(500.0, rel=1e-3)


def test_kalman_tracks_step_change_faster_with_higher_process_var():
    def settle(q):
        p = Kalman(process_var=q, measurement_var=1e4)
        for _ in range(50):
            p.observe(100.0)
        p.observe(1000.0)  # step
        return p.predict()

    assert settle(1e4) > settle(1e0)


def test_kalman_smooths_noise_better_than_raw():
    rng = np.random.default_rng(0)
    true = 1000.0
    p = Kalman(process_var=10.0, measurement_var=1e5)
    errs_raw, errs_kalman = [], []
    for _ in range(500):
        obs = true + rng.normal(0, 300)
        p.observe(max(0.0, obs))
        errs_raw.append(abs(obs - true))
        errs_kalman.append(abs(p.predict() - true))
    assert np.mean(errs_kalman[50:]) < np.mean(errs_raw[50:]) / 2


def test_kalman_validation():
    with pytest.raises(ValueError):
        Kalman(process_var=0.0)
    with pytest.raises(ValueError):
        Kalman(measurement_var=-1.0)


# -- registry -----------------------------------------------------------------


def test_make_predictor_with_kwargs():
    p = make_predictor("moving-average", window=5)
    assert p.window == 5


def test_make_predictor_unknown_name():
    with pytest.raises(ValueError, match="unknown predictor"):
        make_predictor("oracle")


def test_kalman_tracks_bursty_rate_better_than_ma():
    """The paper's §VIII future-work claim, in the regime it targets:
    when regime switches are frequent relative to the averaging window,
    a tuned Kalman filter tracks the rate with less error than the
    moving average. (With slow switches and heavy observation noise the
    MA's deep averaging wins instead — which is *why* it is only a
    future-work improvement, not a strict upgrade.)"""
    for seed in (1, 2, 3):
        rng = np.random.default_rng(seed)
        ma = MovingAverage(window=8)
        ka = Kalman(process_var=1e5, measurement_var=1e5)
        err_ma = err_ka = 0.0
        true = 1000.0
        for i in range(600):
            if i % 30 == 0:
                true = float(rng.uniform(200, 5000))  # regime switch
            obs = max(0.0, true + rng.normal(0, np.sqrt(true) * 3))
            ma.observe(obs)
            ka.observe(obs)
            if i > 10:
                err_ma += abs(ma.predict() - true)
                err_ka += abs(ka.predict() - true)
        assert err_ka < err_ma


# -- HardenedPredictor (fault-tolerance wrapper) -------------------------------


def steady(predictor, rate=100.0, n=8):
    for _ in range(n):
        predictor.observe(rate)
    return predictor


def test_hardened_clamps_a_single_outlier():
    from repro.core import HardenedPredictor

    p = steady(HardenedPredictor(MovingAverage(window=8), clamp_factor=8.0))
    p.observe(1e6)  # the catch-up burst after a stall
    assert p.clamped == 1
    # The outlier moved r̂ by at most one clamped (8×) sample.
    assert p.predict() <= 100.0 * 2
    # A normal reading clears the outlier streak.
    p.observe(100.0)
    assert p.clamped == 1 and p.reconvergences == 0


def test_hardened_passes_in_band_observations_through():
    from repro.core import HardenedPredictor

    plain = steady(MovingAverage(window=8))
    hardened = steady(HardenedPredictor(MovingAverage(window=8)))
    assert hardened.predict() == pytest.approx(plain.predict())
    assert hardened.clamped == 0


def test_hardened_reconverges_on_sustained_regime_change():
    from repro.core import HardenedPredictor

    p = steady(HardenedPredictor(MovingAverage(window=8), reconverge_after=2))
    p.observe(5000.0)
    p.observe(5000.0)  # second out-of-band reading = the new truth
    assert p.reconvergences == 1
    assert p.predict() == pytest.approx(5000.0)


def test_hardened_reads_near_zero_regime():
    from repro.core import HardenedPredictor

    p = steady(HardenedPredictor(MovingAverage(window=8), reconverge_after=2))
    p.observe(0.0)  # a stall window reads as silence
    p.observe(0.0)
    assert p.reconvergences == 1
    assert p.predict() == pytest.approx(0.0)


def test_hardened_reset_and_validation():
    from repro.core import HardenedPredictor

    with pytest.raises(ValueError):
        HardenedPredictor(MovingAverage(), clamp_factor=1.0)
    with pytest.raises(ValueError):
        HardenedPredictor(MovingAverage(), reconverge_after=0)
    p = steady(HardenedPredictor(MovingAverage()))
    p.reset()
    assert p.predict() is None
