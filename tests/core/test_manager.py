"""Tests for the core manager: slot firing, re-arming, no needless wakes."""

import pytest

from repro.cpu import Machine
from repro.core import CoreManager
from repro.sim import Environment, RandomStreams


class FakeConsumer:
    """Minimal consumer double: records activations, completes instantly."""

    def __init__(self, env, name):
        self.env = env
        self.name = name
        self.activations = []

    def activate(self, slot_index):
        self.activations.append((self.env.now, slot_index))
        done = self.env.event()
        done.succeed()
        return done

    def __repr__(self):
        return f"<FakeConsumer {self.name}>"


def make_manager(slot=0.01, jitter=0.0):
    env = Environment()
    machine = Machine(
        env,
        n_cores=1,
        streams=RandomStreams(seed=0),
        timer_kwargs={"signal_jitter_s": jitter},
    )
    mgr = CoreManager(env, machine.core(0), machine.timers, slot).start()
    return env, machine, mgr


def test_manager_fires_reserved_slot_on_time():
    env, machine, mgr = make_manager()
    c = FakeConsumer(env, "a")
    mgr.reserve(c, 3)
    env.run(until=0.05)
    assert c.activations == [(pytest.approx(0.03), 3)]
    assert mgr.scheduled_wakeups == 1


def test_manager_sleeps_with_no_reservations():
    env, machine, mgr = make_manager()
    env.run(until=0.1)
    assert mgr.scheduled_wakeups == 0
    assert machine.core(0).total_wakeups == 0


def test_manager_skips_unreserved_slots():
    env, machine, mgr = make_manager()
    c = FakeConsumer(env, "a")
    mgr.reserve(c, 9)  # slots 1..8 have no reservations
    env.run(until=0.1)
    assert mgr.scheduled_wakeups == 1
    assert c.activations[0][0] == pytest.approx(0.09)


def test_manager_activates_all_holders_of_a_slot():
    env, machine, mgr = make_manager()
    consumers = [FakeConsumer(env, f"c{i}") for i in range(4)]
    for c in consumers:
        mgr.reserve(c, 2)
    env.run(until=0.05)
    assert mgr.scheduled_wakeups == 1  # one slot fire for four consumers
    assert mgr.activations == 4
    for c in consumers:
        assert len(c.activations) == 1


def test_manager_rearms_on_earlier_reservation():
    env, machine, mgr = make_manager()
    late, early = FakeConsumer(env, "late"), FakeConsumer(env, "early")
    mgr.reserve(late, 9)

    def add_early(env):
        yield env.timeout(0.015)
        mgr.reserve(early, 3)

    env.process(add_early(env))
    env.run(until=0.1)
    assert early.activations[0][0] == pytest.approx(0.03)
    assert late.activations[0][0] == pytest.approx(0.09)
    assert mgr.scheduled_wakeups == 2


def test_manager_ignores_cancelled_reservation():
    env, machine, mgr = make_manager()
    c = FakeConsumer(env, "a")
    mgr.reserve(c, 3)

    def cancel(env):
        yield env.timeout(0.015)
        mgr.cancel(c)

    env.process(cancel(env))
    env.run(until=0.1)
    assert c.activations == []
    assert mgr.scheduled_wakeups == 0


def test_manager_reservation_must_be_future():
    env, machine, mgr = make_manager()
    c = FakeConsumer(env, "a")
    env.run(until=0.055)  # current slot = 5
    with pytest.raises(ValueError, match="future slot"):
        mgr.reserve(c, 5)
    mgr.reserve(c, 6)  # ok


def test_manager_moving_a_reservation_fires_new_slot_only():
    env, machine, mgr = make_manager()
    c = FakeConsumer(env, "a")
    mgr.reserve(c, 3)

    def move(env):
        yield env.timeout(0.015)
        mgr.reserve(c, 6)

    env.process(move(env))
    env.run(until=0.1)
    assert c.activations == [(pytest.approx(0.06), 6)]
    assert mgr.scheduled_wakeups == 1


def test_manager_feeds_wake_hint_to_core():
    env, machine, mgr = make_manager()
    core = machine.core(0)
    c = FakeConsumer(env, "a")
    mgr.reserve(c, 8)
    env.run(until=0.01)
    # The core knows its next wakeup is at 0.08 → deep C-state territory.
    assert core._next_wake_hint == pytest.approx(0.08)


def test_manager_waits_for_slow_consumer_before_next_slot():
    env, machine, mgr = make_manager()

    class SlowConsumer(FakeConsumer):
        def activate(self, slot_index):
            self.activations.append((self.env.now, slot_index))
            done = self.env.event()

            def finish(env):
                yield env.timeout(0.025)  # runs past 2 slot boundaries
                done.succeed()

            self.env.process(finish(self.env))
            return done

    slow = SlowConsumer(env, "slow")
    fast = FakeConsumer(env, "fast")
    mgr.reserve(slow, 1)
    mgr.reserve(fast, 2)
    env.run(until=0.1)
    # fast's slot 2 (t=0.02) fires only after slow finished (t=0.035).
    assert fast.activations[0][0] >= 0.035


# -- cancel/re-arm races while the slot timer is in flight -----------------------


def test_cancel_at_fire_instant_leaves_slot_empty():
    """The pop_slot-returns-empty path: the slot timer and the cancelling
    process land on the same instant, the timer event wins the heap race,
    and by the time the manager runs its slot has no holders left."""
    env, machine, mgr = make_manager()
    c = FakeConsumer(env, "a")
    mgr.reserve(c, 3)

    def cancel_exactly_at_fire(env):
        yield env.timeout(0.03)  # the armed timer also fires at t=0.03
        mgr.cancel(c)

    env.process(cancel_exactly_at_fire(env))
    env.run(until=0.1)
    assert c.activations == []
    assert mgr.scheduled_wakeups == 0
    # The manager survives the empty fire and serves later reservations.
    mgr.reserve(c, 12)
    env.run(until=0.14)
    assert c.activations == [(pytest.approx(0.12), 12)]


def test_cancel_then_rereserve_while_timer_in_flight():
    env, machine, mgr = make_manager()
    c = FakeConsumer(env, "a")
    mgr.reserve(c, 3)

    def churn(env):
        yield env.timeout(0.015)
        mgr.cancel(c)
        yield env.timeout(0.01)
        mgr.reserve(c, 6)

    env.process(churn(env))
    env.run(until=0.1)
    assert c.activations == [(pytest.approx(0.06), 6)]
    assert mgr.scheduled_wakeups == 1


def test_moving_reservation_later_while_timer_in_flight():
    env, machine, mgr = make_manager()
    c = FakeConsumer(env, "a")
    mgr.reserve(c, 2)

    def push_back(env):
        yield env.timeout(0.015)
        mgr.reserve(c, 7)  # replaces slot 2 before its timer fires

    env.process(push_back(env))
    env.run(until=0.1)
    assert c.activations == [(pytest.approx(0.07), 7)]
    assert mgr.scheduled_wakeups == 1


# -- the slot-recovery watchdog --------------------------------------------------


def make_lossy_manager(slot=0.01, loss_prob=1.0, grace=None):
    env = Environment()
    machine = Machine(
        env,
        n_cores=1,
        streams=RandomStreams(seed=0),
        timer_kwargs={"signal_jitter_s": 0.0, "signal_loss_prob": loss_prob},
    )
    mgr = CoreManager(
        env, machine.core(0), machine.timers, slot, watchdog_grace_s=grace
    ).start()
    return env, machine, mgr


def test_watchdog_fires_lost_slot_within_one_slot():
    env, machine, mgr = make_lossy_manager()
    c = FakeConsumer(env, "a")
    mgr.reserve(c, 3)
    env.run(until=0.1)
    assert mgr.lost_signals == 1
    assert mgr.watchdog_recoveries == 1
    (when, slot) = c.activations[0]
    assert slot == 3
    # First recovery uses the smallest backoff: Δ/8 past the slot start,
    # and never more than one full slot Δ late.
    assert when == pytest.approx(0.03 + 0.01 / 8)
    assert when <= 0.03 + 0.01 + 1e-12


def test_watchdog_backoff_doubles_but_never_exceeds_slot():
    env, machine, mgr = make_lossy_manager()
    c = FakeConsumer(env, "a")

    def keep_reserving(env):
        for k in range(2, 12):
            target = k * 2  # every other slot
            now_slot = mgr.track.slot_of(env.now)
            if target > now_slot:
                mgr.reserve(c, target)
                yield env.timeout(mgr.track.time_of(target) + 0.009 - env.now)

    env.process(keep_reserving(env))
    env.run(until=0.3)
    assert mgr.watchdog_recoveries >= 3
    # Every re-arm may lose its signal again, so losses ≥ recoveries.
    assert mgr.lost_signals >= mgr.watchdog_recoveries
    for (when, slot) in c.activations:
        lateness = when - mgr.track.time_of(slot)
        assert 0 <= lateness <= 0.01 + 1e-12  # bounded by one slot Δ


def test_watchdog_disabled_restores_legacy_lost_wakeup():
    env, machine, mgr = make_lossy_manager(grace=0.0)
    c = FakeConsumer(env, "a")
    mgr.reserve(c, 3)
    env.run(until=0.2)
    # Legacy failure mode: the slot goes stale until a reservation change.
    assert c.activations == []
    assert mgr.lost_signals >= 1
    assert mgr.watchdog_recoveries == 0


def test_watchdog_not_charged_when_signals_arrive():
    env, machine, mgr = make_lossy_manager(loss_prob=0.0)
    c = FakeConsumer(env, "a")
    mgr.reserve(c, 3)
    env.run(until=0.1)
    assert c.activations == [(pytest.approx(0.03), 3)]
    assert mgr.lost_signals == 0
    assert mgr.watchdog_recoveries == 0
