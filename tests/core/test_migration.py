"""Core failure and consumer migration: teardown, re-homing, recovery."""

import pytest

from repro.core.system import PBPLSystem
from repro.faults.chaos import DEFAULT_SCENARIOS, run_scenario
from repro.harness.params import StandardParams
from repro.harness.runner import Rig, base_trace
from repro.impls.multi import phase_shifted_traces

CORE_KILL = {s.name: s for s in DEFAULT_SCENARIOS}["core-kill"]


def build_system(duration_s=0.5, n_consumers=4, cores=(0, 2), n_cores=3,
                 **overrides):
    params = StandardParams(duration_s=duration_s, seed=2014)
    rig = Rig.build(params, 0, n_cores=n_cores)
    traces = phase_shifted_traces(base_trace(params, 0), n_consumers)
    config = params.pbpl_config(
        overflow_policy=overrides.pop("overflow_policy", "block"),
        harden_predictor=True,
        **overrides,
    )
    system = PBPLSystem(
        rig.env, rig.machine, traces, config, consumer_cores=list(cores)
    ).start()
    return rig, system


# -- kill_core mechanics ---------------------------------------------------------


def test_kill_core_rehomes_consumers_and_tears_down_manager():
    rig, system = build_system()
    rig.env.run(until=0.2)
    dead = system.managers[2]
    before = [c for c in system.consumers if c.manager is dead]
    assert before, "scenario must place consumers on core 2"

    report = system.kill_core(2)

    assert not dead.alive
    assert dead.track.earliest_reserved_slot() is None
    assert len(report.consumers) == len(before)
    for consumer in before:
        assert consumer.manager is system.managers[0]
        assert consumer.core is system.managers[0].core
    assert system.migrations == [report]
    assert report.core_id == 2
    assert report.at_s == pytest.approx(0.2)
    # Migration energy is ω per immediate non-latched re-reservation.
    for m in report.consumers:
        if m.relatch == "immediate" and not m.latched:
            assert m.energy_j == pytest.approx(
                before[0].config.wakeup_cost_j
            )
        else:
            assert m.energy_j == 0.0


def test_killed_manager_rejects_new_reservations():
    rig, system = build_system()
    rig.env.run(until=0.2)
    dead = system.managers[2]
    system.kill_core(2)
    with pytest.raises(RuntimeError, match="dead"):
        dead.reserve(system.consumers[0], 10**6)


def test_kill_core_validates_targets():
    rig, system = build_system()
    rig.env.run(until=0.1)
    with pytest.raises(ValueError, match="no manager on core 7"):
        system.kill_core(7)
    system.kill_core(2)
    with pytest.raises(ValueError, match="already dead"):
        system.kill_core(2)
    # The last manager standing cannot be killed — nowhere to migrate.
    with pytest.raises(RuntimeError, match="surviving"):
        system.kill_core(0)


def test_migrated_consumers_keep_consuming_with_zero_loss():
    rig, system = build_system(duration_s=0.6)
    rig.env.run(until=0.2)
    report = system.kill_core(2)
    rig.env.run(until=0.6)

    stats = system.aggregate_stats()
    assert stats.items_shed == 0
    assert stats.produced == stats.consumed + system.buffered_items()
    assert report.unrecovered == 0
    assert report.recovery_s is not None and report.recovery_s > 0
    for m in report.consumers:
        assert m.recovered_s is not None and m.recovered_s >= report.at_s
    # The pool counted each carried buffer.
    assert system.pool.migrations == len(report.consumers)


# -- the chaos scenario ----------------------------------------------------------


def test_core_kill_scenario_zero_loss_under_block():
    params = StandardParams(duration_s=1.0, seed=2014)
    result = run_scenario(CORE_KILL, params, 4)

    assert result.verdict == "OK"
    assert result.items_shed == 0
    assert result.conservation_ok
    assert result.cores_failed == 1
    assert result.consumers_migrated == 2
    assert result.migration_relatches >= 1
    assert result.migration_unrecovered == 0
    assert result.migration_recovery_s is not None
    assert result.migration_recovery_s > 0
    assert result.migration_energy_j >= 0
    migrated = [c for c in result.per_consumer if c.migrated]
    assert len(migrated) == 2
    for row in migrated:
        assert row.conservation_ok
        assert row.migration_recovery_s is not None
    assert all(c.conservation_ok for c in result.per_consumer)


def test_core_kill_scenario_is_deterministic():
    params = StandardParams(duration_s=0.6, seed=2014)
    a = run_scenario(CORE_KILL, params, 4)
    b = run_scenario(CORE_KILL, params, 4)
    assert a.to_dict() == b.to_dict()


def test_core_kill_skips_on_baselines():
    params = StandardParams(duration_s=0.5, seed=2014)
    result = run_scenario(CORE_KILL, params, 4, impl="Mutex")
    # No core managers to kill: the fault skips, the run still scores.
    assert result.cores_failed == 0
    assert result.conservation_ok


def test_pool_rejects_migration_of_unknown_consumer():
    from repro.buffers.pool import GlobalBufferPool

    pool = GlobalBufferPool(base_allocation=5, n_consumers=2)
    pool.register("consumer-0")
    with pytest.raises(KeyError, match="not registered"):
        pool.note_migration("ghost")
    assert pool.note_migration("consumer-0") == 0
    assert pool.migrations == 1
