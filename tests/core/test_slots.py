"""Unit and property tests for the slot track."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SlotTrack


@pytest.fixture
def track():
    return SlotTrack(slot_size_s=0.01)


def test_slot_arithmetic(track):
    assert track.slot_of(0.0) == 0
    assert track.slot_of(0.0099) == 0
    assert track.slot_of(0.01) == 1
    assert track.time_of(3) == pytest.approx(0.03)


def test_g_is_nearest_slot_at_or_before(track):
    # Paper Eq. 6: g(τ) = sup{s ∈ S | s ≤ τ}.
    assert track.g(0.025) == pytest.approx(0.02)
    assert track.g(0.02) == pytest.approx(0.02)


def test_origin_offsets_grid():
    track = SlotTrack(0.01, origin_s=0.005)
    assert track.slot_of(0.005) == 0
    assert track.time_of(1) == pytest.approx(0.015)


def test_reserve_and_query(track):
    track.reserve(5, "a")
    assert track.is_reserved(5)
    assert track.holders_at(5) == ["a"]
    assert track.reservation_of("a") == 5


def test_one_reservation_per_holder(track):
    track.reserve(5, "a")
    track.reserve(7, "a")  # moves, not duplicates
    assert not track.is_reserved(5)
    assert track.holders_at(7) == ["a"]


def test_multiple_holders_share_a_slot(track):
    track.reserve(5, "a")
    track.reserve(5, "b")
    assert track.reserved_count(5) == 2
    assert sorted(track.holders_at(5)) == ["a", "b"]


def test_cancel(track):
    track.reserve(5, "a")
    assert track.cancel("a") == 5
    assert not track.is_reserved(5)
    assert track.cancel("a") is None  # idempotent


def test_cancel_leaves_other_holders(track):
    track.reserve(5, "a")
    track.reserve(5, "b")
    track.cancel("a")
    assert track.holders_at(5) == ["b"]


def test_next_reserved_slot(track):
    track.reserve(5, "a")
    track.reserve(9, "b")
    assert track.next_reserved_slot(0) == 5
    assert track.next_reserved_slot(5) == 9
    assert track.next_reserved_slot(9) is None


def test_last_reserved_at_or_before(track):
    track.reserve(3, "a")
    track.reserve(7, "b")
    assert track.last_reserved_at_or_before(10) == 7
    assert track.last_reserved_at_or_before(6) == 3
    assert track.last_reserved_at_or_before(2) is None
    assert track.last_reserved_at_or_before(7, strictly_after=3) == 7
    assert track.last_reserved_at_or_before(6, strictly_after=3) is None


def test_pop_slot_clears_reservations(track):
    track.reserve(5, "a")
    track.reserve(5, "b")
    holders = track.pop_slot(5)
    assert sorted(holders) == ["a", "b"]
    assert not track.is_reserved(5)
    assert track.reservation_of("a") is None


def test_pop_empty_slot(track):
    assert track.pop_slot(99) == []


def test_drop_past(track):
    track.reserve(1, "a")
    track.reserve(5, "b")
    track.drop_past(now=0.03)  # current slot = 3
    assert track.reservation_of("a") is None
    assert track.reservation_of("b") == 5


def test_len_counts_distinct_slots(track):
    track.reserve(5, "a")
    track.reserve(5, "b")
    track.reserve(9, "c")
    assert len(track) == 2


def test_invalid_slot_size():
    with pytest.raises(ValueError):
        SlotTrack(0.0)


@given(
    t=st.floats(min_value=0.0, max_value=1e4),
    delta=st.floats(min_value=1e-6, max_value=10.0),
)
@settings(max_examples=300, deadline=None)
def test_g_bounds_property(t, delta):
    """g(t) ≤ t < g(t) + Δ — the defining property of Eq. 6."""
    track = SlotTrack(delta)
    g = track.g(t)
    assert g <= t + delta * 1e-6
    assert t < g + delta * (1 + 1e-6)


@given(ops=st.lists(st.tuples(st.integers(0, 5), st.integers(1, 30)), max_size=60))
@settings(max_examples=200, deadline=None)
def test_reservation_table_consistency(ops):
    """holder→slot and slot→holders maps stay mutually consistent."""
    track = SlotTrack(0.01)
    holders = [f"c{i}" for i in range(6)]
    for who, slot in ops:
        track.reserve(slot, holders[who])
        # invariants
        for h in holders:
            s = track.reservation_of(h)
            if s is not None:
                assert h in track.holders_at(s)
        total = sum(track.reserved_count(k) for k in range(0, 31))
        with_reservation = sum(
            1 for h in holders if track.reservation_of(h) is not None
        )
        assert total == with_reservation
