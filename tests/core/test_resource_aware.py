"""Tests for the resource-aware generalisation (paper §VIII)."""

import numpy as np
import pytest

from repro.core import (
    PBPLConfig,
    PBPLSystem,
    ResourceAwareConfig,
    ResourceAwareSystem,
    ResourceWeights,
    pareto_weights,
)
from repro.cpu import Machine
from repro.sim import Environment, RandomStreams
from repro.workloads import Trace, poisson_trace


def regular_trace(rate, duration):
    gap = 1.0 / rate
    times = np.arange(gap, duration, gap)
    return Trace(times[times < duration], duration, f"regular({rate})")


def build(system_cls, config, traces, seed=0):
    env = Environment()
    machine = Machine(env, n_cores=1, streams=RandomStreams(seed=seed))
    system = system_cls(env, machine, traces, config).start()
    return env, machine, system


# -- weights validation -----------------------------------------------------


def test_weights_validation():
    with pytest.raises(ValueError):
        ResourceWeights(power=-1)
    with pytest.raises(ValueError):
        ResourceWeights(power=0, memory=0, latency=0, cpu=0)


def test_pareto_weights_endpoints():
    pure = pareto_weights(0.0)
    assert pure.power == 1.0 and pure.latency == 0.0
    heavy = pareto_weights(1.0)
    assert heavy.latency > 0
    with pytest.raises(ValueError):
        pareto_weights(2.0)


# -- equivalence with PBPL at pure power weighting ---------------------------


def test_pure_power_weights_match_pbpl():
    """weights=(power=1, rest 0) must reproduce PBPL exactly."""

    def run(system_cls, config_cls):
        traces = [regular_trace(2000.0, 2.0), regular_trace(700.0, 2.0)]
        env, machine, system = build(
            system_cls,
            config_cls(buffer_size=25, slot_size_s=5e-3),
            traces,
        )
        env.run(until=2.0)
        agg = system.aggregate_stats()
        return (
            agg.scheduled_wakeups,
            agg.overflow_wakeups,
            agg.consumed,
            machine.core(0).total_wakeups,
        )

    assert run(PBPLSystem, PBPLConfig) == run(ResourceAwareSystem, ResourceAwareConfig)


# -- latency weighting -------------------------------------------------------


def run_with_weights(weights, seed=1, rate=2000.0, duration=2.0):
    env = Environment()
    machine = Machine(env, n_cores=1, streams=RandomStreams(seed=seed))
    streams = RandomStreams(seed=seed)
    traces = [
        poisson_trace(rate, duration, streams.stream(f"t{i}")) for i in range(3)
    ]
    config = ResourceAwareConfig(
        buffer_size=25, slot_size_s=2.5e-3, weights=weights
    )
    system = ResourceAwareSystem(env, machine, traces, config).start()
    env.run(until=duration)
    agg = system.aggregate_stats()
    return {
        "mean_latency": agg.mean_latency_s,
        "wakeups": machine.core(0).total_wakeups / duration,
        "consumed": agg.consumed,
    }


def test_latency_weight_trades_wakeups_for_latency():
    power_only = run_with_weights(ResourceWeights(power=1.0))
    latency_heavy = run_with_weights(ResourceWeights(power=0.2, latency=4.0))
    assert latency_heavy["mean_latency"] < power_only["mean_latency"]
    assert latency_heavy["wakeups"] > power_only["wakeups"]


def test_memory_weight_shrinks_buffers():
    def avg_capacity(weights):
        env = Environment()
        machine = Machine(env, n_cores=1, streams=RandomStreams(seed=2))
        streams = RandomStreams(seed=2)
        traces = [poisson_trace(2000.0, 2.0, streams.stream("t"))]
        config = ResourceAwareConfig(
            buffer_size=50, slot_size_s=2.5e-3, weights=weights
        )
        system = ResourceAwareSystem(env, machine, traces, config).start()
        env.run(until=2.0)
        return system.average_buffer_capacity()

    frugal = avg_capacity(ResourceWeights(power=1.0, memory=5.0))
    spendy = avg_capacity(ResourceWeights(power=1.0))
    assert frugal < spendy


def test_pareto_sweep_is_monotone_in_latency():
    """Walking the convenience axis trades latency down monotonically-ish."""
    points = [run_with_weights(pareto_weights(e), seed=3) for e in (0.0, 0.5, 1.0)]
    latencies = [p["mean_latency"] for p in points]
    assert latencies[2] < latencies[0]
    # All points keep the pipeline functional.
    for p in points:
        assert p["consumed"] > 0


def test_cpu_weight_prefers_bigger_batches():
    light = run_with_weights(ResourceWeights(power=0.01, cpu=0.0, latency=1.0), seed=4)
    heavy = run_with_weights(ResourceWeights(power=0.01, cpu=50.0, latency=1.0), seed=4)
    # Pricing per-wake CPU pushes toward fewer, larger drains.
    assert heavy["wakeups"] <= light["wakeups"]
