"""Unit tests for the statistics toolkit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    confidence_interval,
    pearson,
    percent_change,
    wakeup_power_significance,
)


# -- confidence intervals ------------------------------------------------------


def test_ci_of_constant_data_is_tight():
    est = confidence_interval([5.0, 5.0, 5.0])
    assert est.mean == 5.0
    assert est.half_width == 0.0


def test_ci_single_value_has_zero_width():
    est = confidence_interval([3.0])
    assert est.mean == 3.0
    assert est.half_width == 0.0
    assert est.n == 1


def test_ci_contains_true_mean_for_gaussian_data():
    rng = np.random.default_rng(0)
    hits = 0
    for _ in range(200):
        sample = rng.normal(10.0, 2.0, size=5)
        est = confidence_interval(sample, level=0.95)
        if est.low <= 10.0 <= est.high:
            hits += 1
    assert hits >= 175  # ≈95% coverage, generous slack


def test_ci_width_shrinks_with_n():
    rng = np.random.default_rng(1)
    small = confidence_interval(rng.normal(0, 1, 4))
    large = confidence_interval(rng.normal(0, 1, 100))
    assert large.half_width < small.half_width


def test_ci_validation():
    with pytest.raises(ValueError):
        confidence_interval([])
    with pytest.raises(ValueError):
        confidence_interval([1.0], level=1.5)


def test_estimate_str():
    assert "±" in str(confidence_interval([1.0, 2.0, 3.0]))


# -- pearson ------------------------------------------------------------------


def test_pearson_perfect_positive():
    assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)


def test_pearson_perfect_negative():
    assert pearson([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)


def test_pearson_zero_variance_returns_zero():
    assert pearson([1, 1, 1], [1, 2, 3]) == 0.0


def test_pearson_validation():
    with pytest.raises(ValueError):
        pearson([1], [2])
    with pytest.raises(ValueError):
        pearson([1, 2], [1, 2, 3])


@given(
    data=st.lists(
        st.tuples(
            st.floats(min_value=-1e6, max_value=1e6),
            st.floats(min_value=-1e6, max_value=1e6),
        ),
        min_size=2,
        max_size=40,
    )
)
@settings(max_examples=200, deadline=None)
def test_pearson_bounded(data):
    xs, ys = zip(*data)
    assert -1.0 - 1e-9 <= pearson(xs, ys) <= 1.0 + 1e-9


# -- significance test ---------------------------------------------------------


def test_strong_linear_effect_is_significant():
    rng = np.random.default_rng(2)
    wakeups = rng.uniform(100, 1000, 30)
    power = 0.001 * wakeups + rng.normal(0, 0.01, 30)
    test = wakeup_power_significance(wakeups, power)
    assert test.significant(0.99)
    assert test.slope > 0


def test_no_effect_is_not_significant():
    rng = np.random.default_rng(3)
    wakeups = rng.uniform(100, 1000, 30)
    power = rng.normal(1.0, 0.1, 30)  # independent of wakeups
    test = wakeup_power_significance(wakeups, power)
    assert not test.significant(0.99)


def test_perfect_correlation_p_essentially_zero():
    test = wakeup_power_significance([1, 2, 3, 4], [2, 4, 6, 8])
    assert test.p_value < 1e-6  # float round-off may keep |r| just below 1


def test_significance_validation():
    with pytest.raises(ValueError):
        wakeup_power_significance([1, 2], [1, 2])


# -- percent change --------------------------------------------------------------


def test_percent_change_reduction():
    assert percent_change(100.0, 80.0) == pytest.approx(-20.0)


def test_percent_change_increase():
    assert percent_change(50.0, 75.0) == pytest.approx(50.0)


def test_percent_change_zero_baseline():
    with pytest.raises(ValueError):
        percent_change(0.0, 1.0)
