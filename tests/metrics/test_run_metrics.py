"""Unit tests for RunMetrics aggregation."""

import pytest

from repro.metrics import RunMetrics, summarise


def make_run(replicate=0, power=0.3, wakeups=100.0, **kwargs):
    defaults = dict(
        implementation="BP",
        n_consumers=5,
        buffer_size=25,
        replicate=replicate,
        duration_s=4.0,
        power_w=power,
        power_true_w=power,
        wakeups_per_s=wakeups,
        core_wakeups_per_s=wakeups,
        usage_ms_per_s=20.0,
    )
    defaults.update(kwargs)
    return RunMetrics(**defaults)


def test_total_batch_wakeups_and_share():
    run = make_run(scheduled_wakeups=300, overflow_wakeups=100)
    assert run.total_batch_wakeups == 400
    assert run.overflow_share == pytest.approx(0.25)


def test_overflow_share_zero_when_no_batch_wakeups():
    assert make_run().overflow_share == 0.0


def test_summarise_means_and_cis():
    runs = [make_run(replicate=i, power=0.3 + 0.01 * i) for i in range(3)]
    summary = summarise(runs)
    assert summary.replicates == 3
    assert summary.mean("power_w") == pytest.approx(0.31)
    assert summary["power_w"].half_width > 0
    assert summary.implementation == "BP"


def test_summarise_rejects_mixed_cells():
    runs = [make_run(), make_run(implementation="Mutex")]
    with pytest.raises(ValueError, match="one cell"):
        summarise(runs)


def test_summarise_rejects_empty():
    with pytest.raises(ValueError):
        summarise([])


def test_summarise_single_run():
    summary = summarise([make_run()])
    assert summary.mean("power_w") == pytest.approx(0.3)
    assert summary["power_w"].half_width == 0.0
