"""Tests for the P² streaming quantile estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.quantiles import P2Quantile, StreamingLatency


def test_quantile_validation():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


def test_empty_estimator_returns_zero():
    assert P2Quantile(0.5).value == 0.0


def test_small_samples_use_exact_order_statistics():
    est = P2Quantile(0.5)
    for x in (5.0, 1.0, 3.0):
        est.observe(x)
    assert est.value == 3.0  # exact median of 3 values


@pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
def test_matches_numpy_on_uniform(q):
    rng = np.random.default_rng(0)
    data = rng.uniform(0, 100, 20_000)
    est = P2Quantile(q)
    for x in data:
        est.observe(float(x))
    exact = np.percentile(data, q * 100)
    assert est.value == pytest.approx(exact, abs=2.0)  # 2% of range


@pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
def test_matches_numpy_on_lognormal(q):
    rng = np.random.default_rng(1)
    data = rng.lognormal(0.0, 1.0, 20_000)
    est = P2Quantile(q)
    for x in data:
        est.observe(float(x))
    exact = float(np.percentile(data, q * 100))
    assert est.value == pytest.approx(exact, rel=0.1)


def test_monotone_quantiles_on_same_stream():
    rng = np.random.default_rng(2)
    ests = [P2Quantile(q) for q in (0.25, 0.5, 0.75, 0.99)]
    for x in rng.normal(0, 1, 5_000):
        for est in ests:
            est.observe(float(x))
    values = [est.value for est in ests]
    assert values == sorted(values)


@given(
    data=st.lists(
        st.floats(min_value=-1e6, max_value=1e6), min_size=5, max_size=400
    )
)
@settings(max_examples=150, deadline=None)
def test_estimate_always_within_observed_range(data):
    est = P2Quantile(0.9)
    for x in data:
        est.observe(x)
    assert min(data) <= est.value <= max(data)


def test_constant_stream_is_exact():
    est = P2Quantile(0.99)
    for _ in range(1000):
        est.observe(7.0)
    assert est.value == 7.0


# -- StreamingLatency ---------------------------------------------------------


def test_streaming_latency_basic_counters():
    s = StreamingLatency()
    for x in (0.001, 0.002, 0.003):
        s.observe(x)
    assert s.count == 3
    assert s.mean == pytest.approx(0.002)
    assert s.maximum == 0.003


def test_streaming_latency_quantiles_close_to_exact():
    rng = np.random.default_rng(3)
    data = rng.exponential(0.01, 30_000)
    s = StreamingLatency(quantiles=(0.5, 0.99))
    for x in data:
        s.observe(float(x))
    assert s.quantile(0.99) == pytest.approx(np.percentile(data, 99), rel=0.1)


def test_streaming_latency_unknown_quantile_rejected():
    s = StreamingLatency(quantiles=(0.5,))
    with pytest.raises(KeyError):
        s.quantile(0.9)


def test_deferred_replay_is_bit_identical_to_eager_updates():
    """The staged-buffer replay (one estimator at a time, arrival order)
    leaves every P² marker exactly where eager per-observation updates
    would — across multiple flush boundaries."""
    rng = np.random.default_rng(9)
    data = [float(x) for x in rng.exponential(0.01, 10_000)]
    deferred = StreamingLatency(quantiles=(0.5, 0.95, 0.99))
    eager = {q: P2Quantile(q) for q in (0.5, 0.95, 0.99)}
    for x in data:
        deferred.observe(x)
        for est in eager.values():
            est.observe(x)
    for q, ref in eager.items():
        assert deferred.quantile(q) == ref.value
        got = deferred._estimators[q]
        assert got._heights == ref._heights
        assert got._pos == ref._pos
        assert got._desired == ref._desired


def test_deferred_buffer_flushes_at_cap():
    s = StreamingLatency(quantiles=(0.5,))
    for i in range(s._FLUSH_AT - 1):
        s.observe(float(i))
    assert len(s._pending) == s._FLUSH_AT - 1
    s.observe(0.0)  # hits the cap
    assert s._pending == []
    assert s._estimators[0.5].n == s._FLUSH_AT


def test_streaming_latency_memory_is_constant():
    """No per-observation storage: the estimator keeps 5 markers."""
    s = StreamingLatency(quantiles=(0.99,))
    for i in range(100_000):
        s.observe(float(i % 17))
    est = s._estimators[0.99]
    assert len(est._heights) == 5
    assert len(est._initial) == 5
