"""Topology spec validation: the declarative DAG layer."""

import pytest

from repro.pipeline import AGGREGATE, Edge, Stage, TELEMETRY, Topology
from repro.pipeline.topology import STOCK_TOPOLOGIES


def _linear(*names_roles):
    stages = tuple(Stage(n, r) for n, r in names_roles)
    edges = tuple(
        Edge(stages[i].name, stages[i + 1].name)
        for i in range(len(stages) - 1)
    )
    return stages, edges


def test_valid_linear_topology():
    stages, edges = _linear(
        ("a", "source"), ("b", "operation"), ("c", "sink")
    )
    topo = Topology("t", stages, edges)
    assert [s.name for s in topo.topological_order()] == ["a", "b", "c"]
    assert [s.name for s in topo.sources()] == ["a"]
    assert [s.name for s in topo.sinks()] == ["c"]
    assert [s.name for s in topo.consumer_stages()] == ["b", "c"]
    assert topo.stage_depths() == {"a": 0, "b": 1, "c": 2}
    assert topo.depth == 2


def test_duplicate_stage_names_rejected():
    stages = (Stage("a", "source"), Stage("a", "sink"), Stage("b", "sink"))
    with pytest.raises(ValueError, match="duplicate"):
        Topology("t", stages, (Edge("a", "b"),))


def test_self_edge_rejected():
    with pytest.raises(ValueError, match="self-edge"):
        Edge("a", "a")


def test_unknown_edge_endpoint_rejected():
    stages, edges = _linear(("a", "source"), ("b", "sink"))
    with pytest.raises(ValueError, match="unknown"):
        Topology("t", stages, edges + (Edge("b", "ghost"),))


def test_type_mismatched_edge_rejected():
    stages = (
        Stage("a", "source", emits="raw"),
        Stage("b", "sink", accepts="record"),
    )
    with pytest.raises(ValueError, match="emits"):
        Topology("t", stages, (Edge("a", "b"),))


def test_cycle_rejected():
    stages = (
        Stage("a", "source"),
        Stage("b", "operation"),
        Stage("c", "operation"),
        Stage("d", "sink"),
    )
    edges = (
        Edge("a", "b"),
        Edge("b", "c"),
        Edge("c", "b"),
        Edge("c", "d"),
    )
    with pytest.raises(ValueError, match="[Cc]ycle"):
        Topology("t", stages, edges)


def test_disconnected_graph_rejected():
    stages = (
        Stage("a", "source"),
        Stage("b", "sink"),
        Stage("x", "source"),
        Stage("y", "sink"),
    )
    edges = (Edge("a", "b"), Edge("x", "y"))
    with pytest.raises(ValueError, match="connected"):
        Topology("t", stages, edges)


def test_source_with_incoming_edge_rejected():
    stages = (
        Stage("a", "source"),
        Stage("b", "source"),
        Stage("c", "sink"),
    )
    edges = (Edge("a", "b"), Edge("b", "c"))
    with pytest.raises(ValueError, match="source"):
        Topology("t", stages, edges)


def test_sink_with_outgoing_edge_rejected():
    stages = (
        Stage("a", "source"),
        Stage("b", "sink"),
        Stage("c", "sink"),
    )
    edges = (Edge("a", "b"), Edge("b", "c"))
    with pytest.raises(ValueError, match="sink"):
        Topology("t", stages, edges)


def test_stock_topologies_are_valid_and_registered():
    assert set(STOCK_TOPOLOGIES) == {"telemetry", "aggregate"}
    assert STOCK_TOPOLOGIES["telemetry"] is TELEMETRY
    assert STOCK_TOPOLOGIES["aggregate"] is AGGREGATE
    assert TELEMETRY.depth == 2
    assert AGGREGATE.depth == 2
    # Diamond: two parallel operations feeding one sink.
    assert [s.name for s in AGGREGATE.consumer_stages()] == [
        "north",
        "south",
        "gateway",
    ]
    assert {s.name for s in AGGREGATE.upstream("gateway")} == {
        "north",
        "south",
    }


def test_describe_mentions_every_edge():
    text = AGGREGATE.describe()
    for edge in AGGREGATE.edges:
        assert f"{edge.src}->{edge.dst}" in text
