"""Flow conservation and metrics plumbing for pipeline runs."""

import pytest

from repro.harness.params import quick_params
from repro.harness.pipelines import run_pipeline
from repro.pipeline import STOCK_TOPOLOGIES


@pytest.mark.parametrize("topo", ["telemetry", "aggregate"])
@pytest.mark.parametrize("impl", ["PBPL", "BP"])
def test_per_stage_conservation(topo, impl):
    """Every stage accounts for every item it was handed:
    produced == consumed + shed + buffered, per stage and end-to-end."""
    params = quick_params(duration_s=0.5, replicates=1)
    metrics, stages = run_pipeline(impl, topo, params)
    assert stages, "stage breakdown must not be empty"
    for row in stages:
        assert row.produced == row.consumed + row.items_shed + row.buffered, (
            f"{impl}/{topo}/{row.stage}: {row.produced} != "
            f"{row.consumed}+{row.items_shed}+{row.buffered}"
        )
        assert row.energy_j > 0
    assert metrics.produced > 0 and metrics.consumed > 0


@pytest.mark.parametrize("topo", ["telemetry", "aggregate"])
def test_pipeline_metrics_fields(topo):
    params = quick_params(duration_s=0.5, replicates=1)
    metrics, stages = run_pipeline("PBPL", topo, params)
    topology = STOCK_TOPOLOGIES[topo]
    assert metrics.topology == topo
    assert metrics.pipeline_stages == len(topology.consumer_stages())
    assert len(stages) == metrics.pipeline_stages
    assert metrics.backpressure_stalls >= 0
    # e2e percentiles are ordered and positive (the sink saw items).
    assert (
        0.0
        < metrics.e2e_p50_latency_s
        <= metrics.e2e_p95_latency_s
        <= metrics.e2e_p99_latency_s
    )
    # Depths follow the topology, and every consumer stage appears once.
    depths = topology.stage_depths()
    assert {r.stage: r.depth for r in stages} == {
        s.name: depths[s.name] for s in topology.consumer_stages()
    }


def test_fanout_broadcasts_and_fanin_merges():
    """Diamond: the source's feed reaches both branches in full, and
    the sink consumes (close to) the union of both branches' output."""
    params = quick_params(duration_s=0.5, replicates=1)
    _, stages = run_pipeline("PBPL", "aggregate", params)
    by_name = {r.stage: r for r in stages}
    north, south, gateway = (
        by_name["north"],
        by_name["south"],
        by_name["gateway"],
    )
    # Broadcast fan-out: both operations see the same source feed.
    assert north.produced == south.produced
    # Fan-in: everything the branches served was forwarded to the sink.
    assert gateway.produced == north.consumed + south.consumed


def test_spinners_rejected_for_pipelines():
    params = quick_params(duration_s=0.2, replicates=1)
    with pytest.raises(ValueError, match="spinning"):
        run_pipeline("BW", "telemetry", params)


def test_unknown_topology_rejected():
    params = quick_params(duration_s=0.2, replicates=1)
    with pytest.raises(ValueError, match="unknown topology"):
        run_pipeline("PBPL", "ring", params)
