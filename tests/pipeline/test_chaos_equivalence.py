"""A zero-fault chaos run is the same experiment as a plain pipeline run.

``pipeline-clean`` exists as the control arm of the chaos report; if
its numbers ever drift from ``run_pipeline`` under the same degradation
config, one of the two paths changed its trace construction or system
wiring and the control stops being a control.
"""

from repro.faults.chaos import DEFAULT_SCENARIOS, run_scenario
from repro.harness.params import StandardParams
from repro.harness.pipelines import run_pipeline

BY_NAME = {s.name: s for s in DEFAULT_SCENARIOS}


def test_zero_fault_chaos_matches_plain_run():
    params = StandardParams(duration_s=0.5, seed=2014)
    chaos = run_scenario(BY_NAME["pipeline-clean"], params, n_consumers=3)
    plain, _ = run_pipeline(
        "PBPL",
        "telemetry",
        params,
        pbpl_overrides=dict(
            overflow_policy="shed-to-deadline", harden_predictor=True
        ),
    )
    assert chaos.produced == plain.produced
    assert chaos.consumed == plain.consumed
    assert chaos.items_shed == plain.items_dropped
    assert chaos.scheduled_wakeups == plain.scheduled_wakeups
    assert chaos.overflow_wakeups == plain.overflow_wakeups
    assert chaos.backpressure_stalls == plain.backpressure_stalls
    assert chaos.max_latency_s == plain.max_latency_s
    # And it really was a clean run: no faults, no recovery tail.
    assert chaos.recovery_time_s == 0.0
    assert chaos.cores_failed == 0
