"""Sanitizer coverage for the pipeline scenarios.

Both stock topologies must sanitize clean: every cross-stage hand-off
(forward-after-release, latch re-alignment) is derived from an ordered
dispatch, never from two same-timestamp writers. The regression half
injects exactly the race the design forbids — two independent
processes pushing into one stage's buffer at the same instant — and
the sanitizer must flag it.
"""

import numpy as np

from repro.analysis.sanitizer import (
    SanitizingEnvironment,
    install_probes,
    sanitize_scenario,
)
from repro.cpu.machine import Machine
from repro.faults.chaos import DEFAULT_SCENARIOS
from repro.harness.params import StandardParams
from repro.pipeline import AGGREGATE, PipelineSystem
from repro.sim.rng import RandomStreams
from repro.workloads.trace import Trace

BY_NAME = {s.name: s for s in DEFAULT_SCENARIOS}


def test_pipeline_clean_sanitizes_clean():
    params = StandardParams(duration_s=0.4, seed=2014)
    report = sanitize_scenario(BY_NAME["pipeline-clean"], params)
    assert report.ok, report.render()
    assert report.events_seen > 100


def test_pipeline_diamond_sanitizes_clean():
    params = StandardParams(duration_s=0.4, seed=2014)
    report = sanitize_scenario(BY_NAME["pipeline-diamond"], params)
    assert report.ok, report.render()
    assert report.events_seen > 100


def test_injected_cross_stage_push_race_is_flagged():
    """Two same-timestamp producers into one stage buffer is the race
    class the forward-after-release protocol exists to prevent; make
    sure the sanitizer would actually catch it if it regressed."""
    install_probes()
    env = SanitizingEnvironment()
    machine = Machine(env, n_cores=2, streams=RandomStreams(seed=1))
    empty = Trace(np.array([]), 1.0, "empty")
    system = PipelineSystem(
        env,
        machine,
        AGGREGATE,
        [empty],
        consumer_cores=[0],
    )
    gateway = system.stage_consumers["gateway"]

    def racer():
        yield env.timeout(0.5)
        gateway.buffer.push(0.5)

    env.process(racer(), name="north-forward")
    env.process(racer(), name="south-forward")
    env.run()
    report = env.sanitizer.finish()
    assert not report.ok
    assert len(report.races) == 1
    race = report.races[0]
    assert race.time_s == 0.5
    assert {race.label_a, race.label_b} == {
        "Timeout -> north-forward",
        "Timeout -> south-forward",
    }
    assert "push" in race.ops_a and "push" in race.ops_b
