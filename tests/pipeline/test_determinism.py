"""Pipeline runs must be bit-reproducible, including under parallelism."""

from repro.harness.params import quick_params
from repro.harness.pipelines import run_pipeline, run_pipeline_study
from repro.trace.recorder import record_run
from repro.trace.stream import to_jsonl


def test_study_identical_across_jobs():
    """The study result is byte-identical whether cells run serially
    or fan out across workers — scheduling must not leak into results."""
    params = quick_params(duration_s=0.4, replicates=1)
    serial = run_pipeline_study(params, jobs=1)
    threaded = run_pipeline_study(params, jobs=2)
    assert serial.runs == threaded.runs
    assert serial.render() == threaded.render()


def test_run_identical_across_reruns():
    params = quick_params(duration_s=0.4, replicates=1)
    first = run_pipeline("PBPL", "aggregate", params)
    second = run_pipeline("PBPL", "aggregate", params)
    assert first == second


def test_recorded_trace_byte_identical():
    """Two recordings of the pipeline golden scenario serialise to the
    same bytes — the property the CI trace-diff matrix relies on."""
    runs = [
        record_run("PBPL", "pipeline-clean", duration_s=0.3)
        for _ in range(2)
    ]
    first, second = (to_jsonl(run.tracer) for run in runs)
    assert first == second
    assert "stage.forward" in first
