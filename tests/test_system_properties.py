"""Cross-cutting property tests: invariants of the whole stack under
randomised inputs (hypothesis fuzzing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PBPLConfig, PBPLSystem
from repro.cpu import Machine
from repro.impls import MultiPairSystem, PCConfig
from repro.power import EnergyLedger, PowerModel
from repro.sim import Environment, RandomStreams
from repro.workloads import Trace


# -- strategy: random small workloads ------------------------------------------

DURATION = 1.0


@st.composite
def random_traces(draw, max_pairs=4, unique=False):
    n_pairs = draw(st.integers(1, max_pairs))
    traces = []
    for i in range(n_pairs):
        n_items = draw(st.integers(0, 120))
        times = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=DURATION * 0.999),
                    min_size=n_items,
                    max_size=n_items,
                    unique=unique,
                )
            )
        )
        traces.append(Trace(np.array(times), DURATION, f"fuzz-{i}"))
    return traces


def build_machine(seed=0):
    env = Environment()
    machine = Machine(env, n_cores=1, streams=RandomStreams(seed=seed))
    model = PowerModel()
    ledger = EnergyLedger(env, model)
    machine.add_listener(ledger)
    for core in machine.cores:
        ledger.watch(core)
    return env, machine, ledger


# -- energy conservation ----------------------------------------------------------


@given(traces=random_traces())
@settings(max_examples=30, deadline=None)
def test_energy_ledger_conserves_time_and_parts(traces):
    """Residency sums to elapsed time; breakdown parts sum to total."""
    env, machine, ledger = build_machine()
    MultiPairSystem(env, machine, "Sem", traces, PCConfig()).start()
    env.run(until=DURATION)
    ledger.settle()
    breakdown = ledger.core_breakdown(0)
    residency = sum(breakdown.residency_s.values())
    assert residency == pytest.approx(DURATION, abs=1e-6)
    total = ledger.total_energy_j()
    b = ledger.total_breakdown()
    assert total == pytest.approx(b.active_j + b.idle_j + b.wakeup_j)
    assert total > 0  # idle floor alone is positive


@given(traces=random_traces(), impl=st.sampled_from(["Mutex", "Sem", "BP"]))
@settings(max_examples=30, deadline=None)
def test_items_conserved_for_all_impls(traces, impl):
    env, machine, ledger = build_machine()
    system = MultiPairSystem(env, machine, impl, traces, PCConfig()).start()
    env.run(until=DURATION)
    agg = system.aggregate_stats()
    buffered = sum(len(p.buffer) for p in system.pairs)
    inflight = sum(p.in_flight for p in system.pairs)
    assert agg.produced == agg.consumed + buffered + inflight
    assert agg.produced <= sum(t.n_items for t in traces)


@given(traces=random_traces())
@settings(max_examples=30, deadline=None)
def test_pbpl_invariants_under_fuzz(traces):
    """PBPL on arbitrary workloads: conservation, pool invariant,
    wakeup accounting consistency."""
    env, machine, ledger = build_machine()
    system = PBPLSystem(
        env, machine, traces, PBPLConfig(buffer_size=10, slot_size_s=5e-3)
    ).start()
    env.run(until=DURATION)
    agg = system.aggregate_stats()
    buffered = sum(len(c.buffer) for c in system.consumers)
    inflight = sum(c.in_flight for c in system.consumers)
    # Conservation.
    assert agg.produced == agg.consumed + buffered + inflight
    # The pool never over-commits.
    system.pool.check_invariant()
    # Wakeup accounting: activations ≥ fired slots; consumer-side
    # scheduled wakeups equal manager activations.
    scheduled_slots = sum(m.scheduled_wakeups for m in system.managers.values())
    assert system.total_activations >= scheduled_slots
    consumer_scheduled = sum(c.stats.scheduled_wakeups for c in system.consumers)
    assert consumer_scheduled <= system.total_activations
    # Core wakeups can't exceed task-level wake events.
    assert machine.core(0).total_wakeups <= (
        scheduled_slots + agg.overflow_wakeups + 2
    )


@given(traces=random_traces(max_pairs=3), seed=st.integers(0, 5))
@settings(max_examples=20, deadline=None)
def test_pbpl_latency_bounded_when_unsaturated(traces, seed):
    """With ample capacity, no consumed item waits much past the
    response-latency bound plus one slot of slack."""
    env, machine, ledger = build_machine(seed)
    config = PBPLConfig(
        buffer_size=200,  # never the binding constraint here
        slot_size_s=5e-3,
        max_response_latency_s=20e-3,
    )
    system = PBPLSystem(env, machine, traces, config).start()
    env.run(until=DURATION)
    agg = system.aggregate_stats()
    if agg.consumed:
        slack = config.slot_size_s + 2e-3  # grid rounding + batch time
        assert agg.max_latency_s <= config.max_response_latency_s + slack


# -- online vs clairvoyant ------------------------------------------------------


@given(traces=random_traces(max_pairs=3, unique=True), seed=st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_edf_stays_near_the_oracle_under_fuzz(traces, seed):
    """The EDF batcher's wakeup count is lower-bounded by the oracle and
    never strays far above it on arbitrary workloads. (Unique arrival
    times: the oracle cannot model simultaneous arrivals of one
    consumer — see its module docstring.)"""
    from repro.core import optimal_wakeups
    from repro.impls import EDFBatchSystem, PCConfig

    config = PCConfig(buffer_size=10, max_response_latency_s=50e-3)
    env, machine, ledger = build_machine(seed)
    system = EDFBatchSystem(env, machine, traces, config).start()
    # Run past the horizon so every deadline-paced drain fires.
    env.run(until=DURATION + 2 * config.max_response_latency_s)
    agg = system.aggregate_stats()
    online = agg.scheduled_wakeups + agg.overflow_wakeups

    oracle = optimal_wakeups(
        traces, config.max_response_latency_s, config.buffer_size
    ).wakeups

    if oracle == 0:
        assert online == 0
        return
    # The oracle assumes *instantaneous* drains; EDF's drains take real
    # processing time, during which new arrivals join later pairs' part
    # of the same wake — so EDF can undercut the instant-drain bound by
    # a handful of wakes, never by a factor.
    assert online >= 0.8 * oracle - 3
    # And it never strays far above the optimum either.
    assert online <= 2 * oracle + 3


# -- determinism ------------------------------------------------------------------


@given(seed=st.integers(0, 100))
@settings(max_examples=15, deadline=None)
def test_full_stack_determinism(seed):
    """Identical seeds give bit-identical runs of the full PBPL stack."""

    def run_once():
        env, machine, ledger = build_machine(seed)
        streams = RandomStreams(seed=seed)
        from repro.workloads import worldcup_like_trace

        trace = worldcup_like_trace(800.0, DURATION, streams.stream("t"))
        system = PBPLSystem(
            env, machine, [trace], PBPLConfig(slot_size_s=5e-3)
        ).start()
        env.run(until=DURATION)
        ledger.settle()
        agg = system.aggregate_stats()
        return (
            agg.consumed,
            agg.scheduled_wakeups,
            agg.overflow_wakeups,
            machine.core(0).total_wakeups,
            ledger.total_energy_j(),
        )

    assert run_once() == run_once()
