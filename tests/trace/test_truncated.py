"""Truncated-trace handling: killed runs fail loudly, not with tracebacks."""

import pytest

from repro.cli import main
from repro.trace import (
    TraceReader,
    TraceSchemaError,
    TraceTruncatedError,
    to_jsonl,
)
from repro.trace.tracer import TraceEvent


def _events(n=3):
    return [
        TraceEvent(
            ts_s=0.1 * i,
            dur_s=None,
            phase="i",
            category="event",
            track="core0",
            name="slot",
            seq=i,
            args={},
        )
        for i in range(n)
    ]


@pytest.fixture
def healthy_trace(tmp_path):
    path = tmp_path / "healthy.jsonl"
    path.write_text(to_jsonl(_events(), meta={"seed": 2014}))
    return path


def test_half_written_final_line_raises_truncated(tmp_path, healthy_trace):
    text = healthy_trace.read_text()
    cut = tmp_path / "cut.jsonl"
    cut.write_text(text[: len(text) - 15])  # knife through the footer line
    with pytest.raises(TraceTruncatedError, match="truncated trace"):
        TraceReader(cut).read()


def test_midfile_garbage_is_schema_error_not_truncation(tmp_path, healthy_trace):
    lines = healthy_trace.read_text().splitlines()
    lines[2] = '{"broken'
    bad = tmp_path / "bad.jsonl"
    bad.write_text("\n".join(lines) + "\n")
    with pytest.raises(TraceSchemaError) as exc_info:
        TraceReader(bad).read()
    assert not isinstance(exc_info.value, TraceTruncatedError)


def test_footerless_trace_reads_but_reports_no_footer(tmp_path, healthy_trace):
    lines = healthy_trace.read_text().splitlines()
    assert "footer" in lines[-1]
    headless = tmp_path / "nofooter.jsonl"
    headless.write_text("\n".join(lines[:-1]) + "\n")
    reader = TraceReader(headless)
    assert len(reader.read()) == 3
    assert reader.footer is None


def test_diff_of_healthy_traces_exits_zero(healthy_trace, capsys):
    assert main(["trace", "diff", str(healthy_trace), str(healthy_trace)]) == 0
    capsys.readouterr()


def test_diff_rejects_footerless_trace_with_exit_two(
    tmp_path, healthy_trace, capsys
):
    lines = healthy_trace.read_text().splitlines()
    partial = tmp_path / "partial.jsonl"
    partial.write_text("\n".join(lines[:-1]) + "\n")
    with pytest.raises(SystemExit) as exc_info:
        main(["trace", "diff", str(healthy_trace), str(partial)])
    assert exc_info.value.code == 2
    err = capsys.readouterr().err
    assert "truncated trace" in err
    assert "footer" in err


def test_diff_rejects_half_written_trace_with_exit_two(
    tmp_path, healthy_trace, capsys
):
    text = healthy_trace.read_text()
    cut = tmp_path / "cut.jsonl"
    cut.write_text(text[: len(text) - 15])
    with pytest.raises(SystemExit) as exc_info:
        main(["trace", "diff", str(cut), str(healthy_trace)])
    assert exc_info.value.code == 2
    assert "truncated trace" in capsys.readouterr().err
