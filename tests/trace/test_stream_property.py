"""Property test: for *any* event stream and ring capacity, the
streaming writer captures a strict superset of what the ring retains,
eviction accounting is exact, and replayed energy matches the sum that
went in."""

import io

import pytest

from repro.trace import StreamingTraceWriter, Tracer
from repro.trace.stream import event_to_dict

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st


class Clock:
    def __init__(self):
        self.now = 0.0


# One emission: (kind, track id, payload). Durations/timestamps advance
# monotonically via accumulated non-negative steps, like the sim clock.
_emission = st.tuples(
    st.sampled_from(["instant", "counter", "span", "wakeup"]),
    st.integers(min_value=0, max_value=3),
    st.floats(min_value=0.0, max_value=5e-3, allow_nan=False),
)


@settings(max_examples=40, deadline=None)
@given(
    emissions=st.lists(_emission, min_size=1, max_size=120),
    capacity=st.integers(min_value=1, max_value=40),
)
def test_stream_is_strict_superset_of_ring_and_energy_reconciles(
    emissions, capacity
):
    clock = Clock()
    tracer = Tracer(clock, capacity=capacity)
    buf = io.StringIO()
    writer = StreamingTraceWriter(buf, meta={}).attach(tracer)

    emitted = 0
    energy_in = 0.0
    for kind, track_i, step in emissions:
        clock.now += step
        track = f"core{track_i}"
        if kind == "instant":
            tracer.instant(track, "evt", "event", i=emitted)
        elif kind == "counter":
            tracer.counter(track, "power_w", step)
        elif kind == "wakeup":
            tracer.instant(track, "wakeup", "core.wakeup", energy_j=step)
            energy_in += step
        else:
            span = tracer.begin(track, "seg", "core.state")
            clock.now += step
            tracer.end(span, power_w=1.0, energy_j=step)
            energy_in += step
        emitted += 1
    tracer.finalize()

    # Eviction accounting: retained + dropped == emitted (exactly).
    assert len(tracer.events) + tracer.dropped_events == emitted
    assert len(tracer.events) <= capacity

    # The stream saw every event, in emission order, before eviction.
    from repro.trace.stream import TraceReader
    import tempfile, os

    assert writer.events_written == emitted
    payload = buf.getvalue()
    with tempfile.NamedTemporaryFile(
        "w", suffix=".jsonl", delete=False, encoding="utf-8"
    ) as fh:
        fh.write(payload)
        # footer not written (writer not closed) — the reader must cope.
        path = fh.name
    try:
        streamed = TraceReader(path).read()
    finally:
        os.unlink(path)
    assert len(streamed) == emitted
    ring_keys = {(e.ts_s, e.seq) for e in tracer.events}
    stream_keys = {(e.ts_s, e.seq) for e in streamed}
    assert ring_keys <= stream_keys
    if tracer.dropped_events:
        assert ring_keys < stream_keys  # strict when anything was evicted

    # Replayed energy equals exactly what was charged in.
    replayed = sum(e.args.get("energy_j", 0.0) for e in streamed)
    assert replayed == pytest.approx(energy_in, abs=1e-12)
