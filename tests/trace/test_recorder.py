"""record_run: scenario routing, baseline impls, bounded collection."""

import pytest

from repro.trace import SCENARIOS, TraceQuery, record_run, reconcile


def test_scenario_names():
    assert "webserver" in SCENARIOS
    assert "clean" in SCENARIOS
    assert "combined" in SCENARIOS


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        record_run("PBPL", "earthquake", duration_s=0.1)


def test_run_metadata(webserver_run):
    assert webserver_run.impl == "PBPL"
    assert webserver_run.scenario == "webserver"
    assert webserver_run.stats.produced > 0
    assert webserver_run.stats.consumed > 0
    assert webserver_run.consumer_core_wakeups > 0
    assert webserver_run.tracer.dropped_events == 0


def test_baseline_impl_records_and_reconciles():
    run = record_run("SPBP", "clean", duration_s=0.4)
    assert run.tracer.events
    # Baselines carry no manager/predictor tracks, but cores still do.
    assert "core0" in run.tracer.tracks()
    assert "core0.mgr" not in run.tracer.tracks()
    assert reconcile(TraceQuery(run.tracer), run.ledger_total_j) < 1e-9


def test_capacity_bounds_collection():
    run = record_run("PBPL", "webserver", duration_s=0.3, capacity=100)
    assert len(run.tracer.events) <= 100
    assert run.tracer.dropped_events > 0
