"""Size-based trace rotation: gzip history segments + live tail.

A rotated trace must read back exactly like an unrotated one — same
header, same events, same footer — with the segments reassembled
transparently by :class:`TraceReader`. Segments are written with
``mtime=0`` so identical runs produce byte-identical archives.
"""

import gzip
import json

import pytest

from repro.trace import (
    StreamingTraceWriter,
    TraceReader,
    TraceTruncatedError,
    read_trace,
)
from repro.trace.stream import event_to_dict
from repro.trace.tracer import TraceEvent


def _events(n):
    return [
        TraceEvent(
            ts_s=i * 0.001,
            dur_s=None,
            phase="i",
            category="test",
            track="t",
            name="tick",
            seq=i,
            args={},
        )
        for i in range(n)
    ]


def _write(path, events, rotate_bytes=None):
    with StreamingTraceWriter(
        path, meta={"seed": 7}, rotate_bytes=rotate_bytes
    ) as writer:
        for event in events:
            writer.write_event(event)
    return writer


def test_rotated_trace_reads_back_identically(tmp_path):
    events = _events(200)
    plain, rotated = tmp_path / "plain.jsonl", tmp_path / "rot.jsonl"
    _write(plain, events)
    writer = _write(rotated, events, rotate_bytes=4096)
    assert writer.segments_rotated >= 2
    assert (tmp_path / "rot.jsonl.1.gz").exists()

    back_plain, reader_plain = read_trace(plain)
    back_rot, reader_rot = read_trace(rotated)
    assert [event_to_dict(e) for e in back_rot] == [
        event_to_dict(e) for e in back_plain
    ]
    assert reader_rot.header == reader_plain.header
    assert reader_rot.footer == reader_plain.footer == {"events": 200}


def test_header_only_in_first_segment(tmp_path):
    path = tmp_path / "t.jsonl"
    writer = _write(path, _events(200), rotate_bytes=4096)
    first = gzip.open(
        tmp_path / "t.jsonl.1.gz", "rt", encoding="utf-8"
    ).readline()
    assert json.loads(first).get("schema") == "repro.trace"
    for seg in range(2, writer.segments_rotated + 1):
        line = gzip.open(
            tmp_path / f"t.jsonl.{seg}.gz", "rt", encoding="utf-8"
        ).readline()
        assert "schema" not in json.loads(line)
    # The live tail holds only the newest events plus the footer.
    tail_lines = path.read_text().splitlines()
    assert json.loads(tail_lines[-1]).get("footer") == {"events": 200}
    assert "schema" not in json.loads(tail_lines[0])


def test_segments_byte_identical_across_runs(tmp_path):
    events = _events(200)
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    _write(a, events, rotate_bytes=4096)
    _write(b, events, rotate_bytes=4096)
    assert (tmp_path / "a.jsonl.1.gz").read_bytes() == (
        tmp_path / "b.jsonl.1.gz"
    ).read_bytes()
    assert a.read_bytes() == b.read_bytes()


def test_rotation_requires_path_target(tmp_path):
    with (tmp_path / "f.jsonl").open("w") as fh:
        with pytest.raises(ValueError, match="path"):
            StreamingTraceWriter(fh, rotate_bytes=4096)


def test_rotate_bytes_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="positive"):
        StreamingTraceWriter(tmp_path / "f.jsonl", rotate_bytes=0)


def test_truncated_tail_raises_truncation_error(tmp_path):
    path = tmp_path / "t.jsonl"
    _write(path, _events(200), rotate_bytes=4096)
    whole = path.read_bytes()
    path.write_bytes(whole[:-20])  # clip mid-line: a crashed run
    reader = TraceReader(path)
    with pytest.raises(TraceTruncatedError):
        list(reader.iter_events())
