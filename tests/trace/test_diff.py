"""Structural trace diffing: zero drift on identical seeds, named
consumers/slots on a predictor change, threshold semantics, and the
committed golden trace staying in sync with the recorder."""

from pathlib import Path

import pytest

from repro.trace import TraceQuery, Tracer, diff_events, extract_structure

GOLDEN = Path(__file__).resolve().parents[2] / "results/golden/pbpl_smoke.trace.jsonl"


class Clock:
    def __init__(self):
        self.now = 0.0


def _mini_trace(latched_second=True, extra_slot=False, wakeup_j=1e-4):
    """A hand-built two-consumer trace with known structure."""
    clock = Clock()
    tracer = Tracer(clock)
    tracer.instant("core0.mgr", "reserve", "slot", slot=5, consumer="c-0")
    tracer.instant(
        "c-0", "reserve.decision", "predictor", slot=5, latched=False
    )
    tracer.instant("core0.mgr", "reserve", "slot", slot=5, consumer="c-1")
    tracer.instant(
        "c-1", "reserve.decision", "predictor", slot=5, latched=latched_second
    )
    if extra_slot:
        tracer.instant("core0.mgr", "reserve", "slot", slot=9, consumer="c-1")
    span = tracer.begin("core0.mgr", "slot", "slot", slot=5, consumers=2)
    clock.now = 0.01
    tracer.end(span)
    tracer.instant("core0", "wakeup", "core.wakeup",
                   owner="c-0", energy_j=wakeup_j)
    seg = tracer.begin("core0", "active", "core.state")
    clock.now = 0.02
    tracer.end(seg, power_w=0.5, energy_j=0.005)
    tracer.finalize()
    return tracer.events


def test_extract_structure_reads_the_vocabulary():
    s = extract_structure(_mini_trace())
    assert s.reserved == {("core0.mgr", 5): {"c-0", "c-1"}}
    assert s.fired == {("core0.mgr", 5): 2}
    assert s.latched == {"c-1": 1}
    assert s.decisions == {"c-0": 1, "c-1": 1}
    assert s.wakeups == {"core0": 1}
    assert s.energy_j[("core0", "active")] == pytest.approx(0.005)
    assert s.energy_j[("core0", "wakeup")] == pytest.approx(1e-4)


def test_identical_traces_diff_empty():
    diff = diff_events(_mini_trace(), _mini_trace())
    assert diff.is_empty
    assert "no structural or energy drift" in diff.render()
    assert diff.to_dict()["empty"] is True


def test_latching_loss_is_named():
    diff = diff_events(_mini_trace(), _mini_trace(latched_second=False))
    assert not diff.is_empty
    [delta] = diff.latch_deltas
    assert delta.track == "c-1"
    assert (delta.latched_a, delta.latched_b) == (1, 0)
    assert "c-1 lost latching" in diff.render()
    assert diff.affected_consumers == ["c-1"]


def test_slot_appearance_names_consumer_and_slot():
    diff = diff_events(_mini_trace(), _mini_trace(extra_slot=True))
    reserved = [d for d in diff.slot_deltas if d.kind == "reserved"]
    [delta] = reserved
    assert (delta.track, delta.slot, delta.present_in) == ("core0.mgr", 9, "B")
    assert delta.consumers == ("c-1",)
    text = diff.render()
    assert "core0.mgr#9 appeared (c-1)" in text


def test_energy_threshold_suppresses_small_drift():
    a, b = _mini_trace(wakeup_j=1e-4), _mini_trace(wakeup_j=2e-4)
    assert not diff_events(a, b).is_empty  # default: bit-exact
    assert diff_events(a, b, energy_threshold_j=1e-3).is_empty
    loud = diff_events(a, b, energy_threshold_j=1e-5)
    [delta] = loud.energy_deltas
    assert (delta.track, delta.phase) == ("core0", "wakeup")
    assert delta.delta_j == pytest.approx(1e-4)


def test_diff_to_dict_shape():
    d = diff_events(
        _mini_trace(), _mini_trace(latched_second=False, extra_slot=True)
    ).to_dict()
    assert d["empty"] is False
    assert d["slots"][0]["track"] == "core0.mgr"
    assert d["latching"][0]["latched"] == [1, 0]
    assert "c-1" in d["affected_consumers"]


# -- real-run integration ------------------------------------------------------


@pytest.fixture(scope="module")
def webserver_events_pair():
    """Two identical-seed runs + one with a changed predictor window."""
    from repro.trace import record_run

    kw = dict(duration_s=0.3, n_consumers=3, seed=2014)
    base_a = record_run("PBPL", "webserver", **kw)
    base_b = record_run("PBPL", "webserver", **kw)
    changed = record_run(
        "PBPL", "webserver", config_overrides={"predictor_window": 2}, **kw
    )
    return (
        TraceQuery(base_a.tracer).events,
        TraceQuery(base_b.tracer).events,
        TraceQuery(changed.tracer).events,
    )


def test_identical_seed_runs_have_zero_drift(webserver_events_pair):
    a, b, _ = webserver_events_pair
    diff = diff_events(a, b)
    assert diff.is_empty, diff.render()


def test_predictor_change_produces_named_drift(webserver_events_pair):
    a, _, changed = webserver_events_pair
    diff = diff_events(a, changed)
    assert not diff.is_empty
    # The diff must name the affected consumers and slots, not just count.
    assert diff.affected_consumers
    assert all(c.startswith("consumer-") for c in diff.affected_consumers)
    assert diff.slot_deltas  # specific slots appeared/disappeared
    text = diff.render()
    assert "latching" in text and "#" in text


def test_committed_golden_matches_fresh_recording(tmp_path):
    """`results/golden/pbpl_smoke.trace.jsonl` must stay in sync with the
    recorder — regenerate with `repro trace bless` after intentional
    changes."""
    from repro.cli import _record_golden
    from repro.trace import read_trace

    assert GOLDEN.is_file(), "golden trace missing — run `repro trace bless`"
    fresh_path = tmp_path / "fresh.trace.jsonl"
    _record_golden(fresh_path)
    golden_events, _ = read_trace(GOLDEN)
    fresh_events, _ = read_trace(fresh_path)
    diff = diff_events(golden_events, fresh_events)
    assert diff.is_empty, (
        "recorder drifted from the blessed golden:\n" + diff.render()
    )
    # Byte-stability is stronger than structural equality; assert it too.
    assert fresh_path.read_bytes() == GOLDEN.read_bytes()
