"""Shared fixtures: one instrumented run reused across trace tests."""

import pytest

from repro.trace import record_run


@pytest.fixture(scope="session")
def webserver_run():
    """A short PBPL webserver run with the tracer attached (expensive —
    recorded once per session, read-only everywhere)."""
    return record_run("PBPL", "webserver", duration_s=0.5)
