"""Same seed + config ⇒ byte-identical trace exports, twice over."""

import pytest

from repro.trace import record_run, to_chrome_json, to_text_timeline


@pytest.mark.parametrize("impl,scenario", [("PBPL", "webserver"), ("Sem", "combined")])
def test_exports_are_byte_identical_across_runs(impl, scenario):
    a = record_run(impl, scenario, duration_s=0.4, seed=7)
    b = record_run(impl, scenario, duration_s=0.4, seed=7)
    assert to_chrome_json(a.tracer) == to_chrome_json(b.tracer)
    assert to_text_timeline(a.tracer) == to_text_timeline(b.tracer)
    assert a.ledger_total_j == b.ledger_total_j


def test_different_seeds_differ():
    a = record_run("PBPL", "webserver", duration_s=0.4, seed=1)
    b = record_run("PBPL", "webserver", duration_s=0.4, seed=2)
    assert to_chrome_json(a.tracer) != to_chrome_json(b.tracer)
