"""Span aggregation: self-time nesting math, indexed energy attribution,
wakeup causes, and the terminal report rendering."""

import pytest

from repro.trace import (
    PowerIndex,
    TraceQuery,
    Tracer,
    aggregate_spans,
    attribute_span,
    render_report,
    wakeup_causes,
)


class Clock:
    def __init__(self):
        self.now = 0.0


def nested_tracer():
    """One track with parent [0,10ms] containing child [2,6ms] containing
    grandchild [3,4ms]; a sibling [12,14ms]."""
    clock = Clock()
    tracer = Tracer(clock)
    tracer.complete("t", "parent", 0.000, 0.010, "span")
    tracer.complete("t", "child", 0.002, 0.006, "span")
    tracer.complete("t", "grand", 0.003, 0.004, "span")
    tracer.complete("t", "sibling", 0.012, 0.014, "span")
    return tracer


def test_self_time_subtracts_nested_children():
    aggs = {a.key: a for a in aggregate_spans(nested_tracer().events)}
    # parent: 10ms inclusive, minus the 4ms child = 6ms self.
    assert aggs[("t", "parent")].inclusive_s == pytest.approx(0.010)
    assert aggs[("t", "parent")].self_s == pytest.approx(0.006)
    # child: 4ms inclusive minus 1ms grandchild.
    assert aggs[("t", "child")].self_s == pytest.approx(0.003)
    assert aggs[("t", "grand")].self_s == pytest.approx(0.001)
    assert aggs[("t", "sibling")].self_s == pytest.approx(0.002)
    # Self times partition the union of wall time on the track.
    assert sum(a.self_s for a in aggs.values()) == pytest.approx(0.012)


def test_aggregate_sorts_by_self_time_desc():
    names = [a.name for a in aggregate_spans(nested_tracer().events)]
    assert names == ["parent", "child", "sibling", "grand"]


def power_tracer():
    """core0 carries a power record; a batch span on another track
    overlaps half of the active segment."""
    clock = Clock()
    tracer = Tracer(clock)
    tracer.complete(
        "core0", "active", 0.000, 0.010, "core.state",
        power_w=2.0, energy_j=0.020,
    )
    tracer.complete(
        "core0", "C1", 0.010, 0.020, "core.state",
        power_w=0.5, energy_j=0.005,
    )
    tracer.instant("core0", "wakeup", "core.wakeup", owner="c-0",
                   energy_j=1e-3)
    clock.now = 0.0
    tracer.complete("c-0", "batch", 0.005, 0.015, "consumer", core=0)
    return tracer


def test_power_index_matches_reference_attribution():
    tracer = power_tracer()
    query = TraceQuery(tracer)
    [batch] = query.spans(name="batch")
    reference = attribute_span(query, batch)  # O(n) reference impl
    index = PowerIndex(query.events)
    fast = index.energy_j("core0", batch.ts_s, batch.end_s)
    assert fast == pytest.approx(reference.total_j)
    # Half the active segment (10 mJ) + half the C1 segment (2.5 mJ)
    # + no wakeup at t=0 outside [5, 15] ms... the wakeup at t=0 is
    # outside the window, so exactly 12.5 mJ.
    assert fast == pytest.approx(0.0125)


def test_power_index_partial_and_full_windows():
    index = PowerIndex(power_tracer().events)
    assert index.energy_j("core0", 0.0, 0.020) == pytest.approx(0.026)
    assert index.energy_j("core0", 0.0, 0.010) == pytest.approx(0.021)
    assert index.energy_j("core0", 0.002, 0.004) == pytest.approx(0.004)
    assert index.energy_j("core0", 0.5, 0.6) == 0.0
    assert index.energy_j("missing", 0.0, 1.0) == 0.0


def test_batch_span_attributed_against_its_core():
    aggs = {a.key: a for a in aggregate_spans(power_tracer().events)}
    assert aggs[("c-0", "batch")].energy_j == pytest.approx(0.0125)
    # Residency spans keep their exact recorded joules.
    assert aggs[("core0", "active")].energy_j == pytest.approx(0.020)


def test_wakeup_causes_grouped_and_sorted():
    clock = Clock()
    tracer = Tracer(clock)
    for _ in range(3):
        tracer.instant("core0", "wakeup", "core.wakeup", owner="kernel-tick",
                       energy_j=1e-4)
    tracer.instant("core0", "wakeup", "core.wakeup", owner="c-1",
                   energy_j=1e-4)
    causes = wakeup_causes(tracer.events)
    assert [(c.owner, c.count) for c in causes] == [
        ("kernel-tick", 3), ("c-1", 1)
    ]
    assert causes[0].energy_j == pytest.approx(3e-4)


def test_render_report_columns_and_truncation_marker():
    clock = Clock()
    tracer = Tracer(clock)
    tracer.complete("t", "work", 0.0, 0.010, "span")
    tracer.begin("t", "open", "span")
    clock.now = 0.02
    tracer.finalize()  # "open" becomes a truncated span
    text = render_report(tracer.events, title="demo")
    assert text.splitlines()[0] == "demo"
    assert "self ms" in text and "joules" in text and "flame" in text
    assert "t/work" in text and "t/open" in text
    assert "(truncated)" in text
    assert "█" in text


def test_render_report_top_caps_rows():
    clock = Clock()
    tracer = Tracer(clock)
    for i in range(8):
        tracer.complete("t", f"s{i}", i * 0.01, i * 0.01 + 0.005, "span")
    text = render_report(tracer.events, top=3)
    assert "... 5 more span groups" in text


def test_report_on_real_run_is_deterministic(webserver_run):
    events = TraceQuery(webserver_run.tracer).events
    a = render_report(events, top=10)
    b = render_report(events, top=10)
    assert a == b
    assert "core0/" in a
    assert "top wakeup causes" in a
