"""Streaming JSONL export: spill-before-eviction, schema versioning,
byte stability, and ring-overflow fidelity."""

import json

import pytest

from repro.trace import (
    SCHEMA_VERSION,
    StreamingTraceWriter,
    TraceQuery,
    TraceReader,
    TraceSchemaError,
    Tracer,
    read_trace,
    record_run,
    to_jsonl,
    trace_energy_j,
)
from repro.trace.stream import event_from_dict, event_to_dict


class Clock:
    def __init__(self):
        self.now = 0.0


def small_tracer():
    clock = Clock()
    tracer = Tracer(clock)
    tracer.instant("mgr", "reserve", "slot", slot=3, consumer="c-0")
    tracer.counter("core0", "power_w", 0.12)
    span = tracer.begin("mgr", "slot", "slot", slot=3)
    clock.now = 0.01
    tracer.end(span, activated=1)
    return tracer


# -- writer/reader roundtrip ---------------------------------------------------


def test_roundtrip_preserves_events(tmp_path):
    events = small_tracer().events
    path = tmp_path / "t.jsonl"
    with StreamingTraceWriter(path, meta={"seed": 7}) as w:
        for e in events:
            w.write_event(e)
    back, reader = read_trace(path)
    assert len(back) == len(events)
    for a, b in zip(sorted(back, key=lambda e: e.sort_key()), events):
        assert event_to_dict(a) == event_to_dict(b)
    assert reader.meta == {"seed": 7}
    assert reader.footer == {"events": 3}


def test_sink_sees_events_at_append_time(tmp_path):
    path = tmp_path / "live.jsonl"
    clock = Clock()
    tracer = Tracer(clock)
    writer = StreamingTraceWriter(path, meta={}).attach(tracer)
    tracer.instant("t", "one")
    assert writer.events_written == 1
    tracer.instant("t", "two")
    writer.close()
    events, _ = read_trace(path)
    assert [e.name for e in events] == ["one", "two"]


def test_writer_superset_of_overflowed_ring(tmp_path):
    """The file keeps everything the 4-slot ring evicts."""
    path = tmp_path / "o.jsonl"
    clock = Clock()
    tracer = Tracer(clock, capacity=4)
    writer = StreamingTraceWriter(path).attach(tracer)
    for i in range(10):
        clock.now = i * 0.001
        tracer.instant("t", f"e{i}")
    writer.close(dropped=tracer.dropped_events)
    assert tracer.dropped_events == 6
    assert len(tracer.events) == 4
    streamed, reader = read_trace(path)
    assert [e.name for e in streamed] == [f"e{i}" for i in range(10)]
    ring_keys = {(e.ts_s, e.seq) for e in tracer.events}
    assert ring_keys < {(e.ts_s, e.seq) for e in streamed}  # strict superset
    assert reader.footer["dropped"] == 6


def test_event_dict_roundtrip_is_lossless():
    tracer = small_tracer()
    for e in tracer.events:
        again = event_from_dict(json.loads(json.dumps(event_to_dict(e))))
        assert event_to_dict(again) == event_to_dict(e)


def test_to_jsonl_is_byte_stable(tmp_path):
    a = to_jsonl(small_tracer(), meta={"k": 1})
    b = to_jsonl(small_tracer(), meta={"k": 1})
    assert a == b
    lines = a.strip().splitlines()
    header = json.loads(lines[0])
    assert header["schema"] == "repro.trace"
    assert header["schema_version"] == "1.0"
    assert json.loads(lines[-1])["footer"]["events"] == 3


def test_writer_closed_is_idempotent_and_rejects_writes(tmp_path):
    writer = StreamingTraceWriter(tmp_path / "x.jsonl")
    writer.close()
    writer.close()
    with pytest.raises(ValueError, match="closed"):
        writer.write_event(small_tracer().events[0])


# -- schema versioning ---------------------------------------------------------


def _write_lines(path, lines):
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def test_reader_rejects_newer_major(tmp_path):
    major = SCHEMA_VERSION[0] + 1
    path = _write_lines(
        tmp_path / "future.jsonl",
        [json.dumps({"schema": "repro.trace", "schema_version": f"{major}.0",
                     "meta": {}})],
    )
    with pytest.raises(TraceSchemaError, match="newer than the supported"):
        TraceReader(path)


def test_reader_accepts_newer_minor(tmp_path):
    path = _write_lines(
        tmp_path / "minor.jsonl",
        [
            json.dumps({"schema": "repro.trace",
                        "schema_version": f"{SCHEMA_VERSION[0]}.99",
                        "meta": {}}),
            json.dumps({"args": {}, "cat": "e", "dur": None, "name": "x",
                        "ph": "i", "seq": 0, "track": "t", "ts": 0.0,
                        "new_minor_field": 42}),
        ],
    )
    events = TraceReader(path).read()
    assert [e.name for e in events] == ["x"]


@pytest.mark.parametrize(
    "first_line",
    [
        "",  # empty file
        "not json at all",
        json.dumps({"no": "header"}),
        json.dumps({"schema": "something.else", "schema_version": "1.0"}),
        json.dumps({"schema": "repro.trace", "schema_version": "one.two"}),
    ],
)
def test_reader_rejects_malformed_headers(tmp_path, first_line):
    path = _write_lines(tmp_path / "bad.jsonl", [first_line])
    with pytest.raises(TraceSchemaError):
        TraceReader(path)


def test_reader_clear_error_on_missing_event_field(tmp_path):
    path = _write_lines(
        tmp_path / "cut.jsonl",
        [
            json.dumps({"schema": "repro.trace", "schema_version": "1.0",
                        "meta": {}}),
            json.dumps({"args": {}, "name": "x"}),  # missing ts/ph/...
        ],
    )
    with pytest.raises(TraceSchemaError, match="missing field"):
        TraceReader(path).read()


def test_reader_clear_error_on_corrupt_line(tmp_path):
    # An unparseable line *with lines after it* is corruption; an
    # unparseable *final* line is truncation (see test_truncated.py).
    path = _write_lines(
        tmp_path / "corrupt.jsonl",
        [
            json.dumps({"schema": "repro.trace", "schema_version": "1.0",
                        "meta": {}}),
            "{corrupt, not json",
            json.dumps({"footer": {"events": 0}}),
        ],
    )
    with pytest.raises(TraceSchemaError, match="invalid JSON"):
        TraceReader(path).read()


# -- full-run fidelity ---------------------------------------------------------


def test_streamed_chaos_run_exceeds_ring_and_reconciles(tmp_path):
    """A chaos run through a tiny ring: the JSONL stream must hold more
    events than the ring capacity and still reconcile with the ledger."""
    path = tmp_path / "chaos.jsonl"
    writer = StreamingTraceWriter(path, meta={"scenario": "combined"})
    run = record_run(
        "PBPL", "combined", duration_s=0.4, n_consumers=3,
        capacity=300, stream=writer,
    )
    writer.close(
        dropped=run.tracer.dropped_events, ledger_total_j=run.ledger_total_j
    )
    assert run.tracer.dropped_events > 0
    streamed, reader = read_trace(path)
    assert len(streamed) > 300  # exceeded the ring capacity
    assert len(streamed) == len(run.tracer.events) + run.tracer.dropped_events
    ring_keys = {(e.ts_s, e.seq) for e in run.tracer.events}
    assert ring_keys < {(e.ts_s, e.seq) for e in streamed}
    replayed = trace_energy_j(TraceQuery(streamed))
    assert replayed == pytest.approx(reader.footer["ledger_total_j"], abs=1e-9)
