"""Trace-driven power attribution against the exact energy ledger."""

import pytest

from repro.trace import (
    TraceQuery,
    attribute_span,
    attribute_spans,
    consumer_energy_table,
    energy_by_track,
    reconcile,
    trace_energy_j,
)

#: The acceptance tolerance: per-span energies summed over the trace
#: must reconcile with the ledger aggregate to within 1e-9 J.
TOLERANCE_J = 1e-9


@pytest.fixture(scope="module")
def query(webserver_run):
    return TraceQuery(webserver_run.tracer)


def test_trace_energy_reconciles_with_ledger(webserver_run, query):
    assert webserver_run.ledger_total_j > 0
    assert reconcile(query, webserver_run.ledger_total_j) < TOLERANCE_J


def test_energy_by_track_sums_to_total(query):
    per_track = energy_by_track(query)
    assert set(per_track) == {"core0", "core1"}
    assert all(v > 0 for v in per_track.values())
    assert sum(per_track.values()) == pytest.approx(
        trace_energy_j(query), abs=TOLERANCE_J
    )


def test_attribute_batch_spans(query):
    batches = query.spans(name="batch", category="consumer")
    assert batches, "webserver run must contain consumer batches"
    energies = attribute_spans(query, batches)
    for span, e in zip(batches, energies):
        assert e.track == span.track and e.name == "batch"
        assert e.residency_j >= 0 and e.wakeup_j >= 0
        assert e.total_j == pytest.approx(e.residency_j + e.wakeup_j)
    # Batches run on the (active, powered) consumer core: energy flows.
    assert sum(e.total_j for e in energies) > 0


def test_attribution_never_exceeds_core_total(query):
    batches = query.spans(name="batch", category="consumer")
    per_track = energy_by_track(query)
    attributed = sum(e.residency_j for e in attribute_spans(query, batches))
    # Batches on one consumer can overlap another's on the same core, so
    # per-consumer sums may double-charge shared intervals — but a single
    # consumer's serial batches cannot exceed the whole core's joules.
    one = sum(
        e.residency_j
        for e in attribute_spans(
            query, query.spans(name="batch", track="consumer-0")
        )
    )
    assert one <= per_track["core0"] + TOLERANCE_J
    assert attributed > 0


def test_consumer_energy_table_covers_all_consumers(webserver_run, query):
    table = consumer_energy_table(query)
    expected = {f"consumer-{i}" for i in range(webserver_run.n_consumers)}
    assert set(table) == expected
    assert all(v > 0 for v in table.values())


def test_explicit_core_track_override(query):
    [batch] = query.spans(name="batch", track="consumer-0")[:1]
    via_default = attribute_span(query, batch)
    via_override = attribute_span(query, batch, core_track="core0")
    assert via_default.total_j == pytest.approx(via_override.total_j)
