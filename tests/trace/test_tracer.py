"""Tracer unit behaviour: phases, ring bound, finalize, null path."""

import pytest

from repro.trace import NULL_TRACER, NullTracer, Tracer
from repro.trace.tracer import COUNTER, INSTANT, SPAN


class Clock:
    """Minimal stand-in for the simulation environment (only ``now``)."""

    def __init__(self):
        self.now = 0.0


def test_null_tracer_is_falsy_and_inert():
    assert not NULL_TRACER
    assert isinstance(NULL_TRACER, NullTracer)
    NULL_TRACER.instant("t", "x")
    NULL_TRACER.counter("t", "c", 1.0)
    span = NULL_TRACER.begin("t", "s")
    NULL_TRACER.end(span, extra=1)
    NULL_TRACER.complete("t", "s", 0.0, 1.0)
    NULL_TRACER.finalize()
    assert NULL_TRACER.events == []
    assert NULL_TRACER.dropped_events == 0


def test_instant_counter_and_span_phases():
    clock = Clock()
    tracer = Tracer(clock)
    assert tracer  # enabled tracer is truthy
    tracer.instant("track", "hello", "cat", k=1)
    tracer.counter("track", "depth", 7)
    span = tracer.begin("track", "work", "cat", slot=3)
    clock.now = 0.25
    tracer.end(span, items=4)

    by_phase = {e.phase: e for e in tracer.events}
    inst, ctr, spn = by_phase[INSTANT], by_phase[COUNTER], by_phase[SPAN]
    assert inst.name == "hello" and inst.args == {"k": 1}
    assert inst.dur_s is None and inst.end_s == inst.ts_s
    assert ctr.args == {"value": 7}
    assert spn.ts_s == 0.0 and spn.dur_s == pytest.approx(0.25)
    assert spn.args == {"slot": 3, "items": 4}
    assert spn.end_s == pytest.approx(0.25)


def test_events_sorted_by_start_time_then_seq():
    clock = Clock()
    tracer = Tracer(clock)
    outer = tracer.begin("t", "outer")
    clock.now = 1.0
    tracer.instant("t", "mid")
    clock.now = 2.0
    tracer.end(outer)  # recorded last, but starts first
    names = [e.name for e in tracer.events]
    assert names == ["outer", "mid"]


def test_ring_buffer_drops_oldest_and_counts():
    clock = Clock()
    tracer = Tracer(clock, capacity=3)
    for i in range(5):
        tracer.instant("t", f"e{i}")
    assert len(tracer) == 3
    assert tracer.dropped_events == 2
    assert [e.name for e in tracer.events] == ["e2", "e3", "e4"]


def test_finalize_truncates_open_spans_idempotently():
    clock = Clock()
    tracer = Tracer(clock)
    tracer.begin("t", "unfinished")
    clock.now = 0.5
    tracer.finalize()
    tracer.finalize()  # no double-record
    spans = [e for e in tracer.events if e.phase == SPAN]
    assert len(spans) == 1
    assert spans[0].args.get("truncated") is True
    assert spans[0].dur_s == pytest.approx(0.5)


def test_spans_opened_after_finalize_are_not_lost():
    """A mid-run finalize (e.g. a mid-run TraceQuery) must not swallow
    spans opened afterwards — the old once-only gate silently excluded
    them from every duration query."""
    clock = Clock()
    tracer = Tracer(clock)
    tracer.finalize()  # premature, e.g. TraceQuery(tracer) mid-run
    late = tracer.begin("t", "late")
    clock.now = 0.3
    tracer.finalize()
    spans = [e for e in tracer.events if e.phase == SPAN]
    assert [s.name for s in spans] == ["late"]
    assert spans[0].args.get("truncated") is True
    assert spans[0].dur_s == pytest.approx(0.3)
    assert late.closed


def test_midrun_query_then_final_query_sees_all_spans():
    from repro.trace import TraceQuery

    clock = Clock()
    tracer = Tracer(clock)
    early = tracer.begin("t", "early")
    clock.now = 0.1
    tracer.end(early)
    assert len(TraceQuery(tracer).spans()) == 1  # mid-run peek finalizes
    still_open = tracer.begin("t", "still-open")
    clock.now = 0.4
    final = TraceQuery(tracer)
    assert [s.name for s in final.spans()] == ["early", "still-open"]
    [cut] = final.spans(where=lambda e: e.args.get("truncated"))
    assert cut.name == "still-open"
    assert final.covering(0.2, name="still-open")  # duration queries see it


def test_sink_receives_every_event_before_eviction():
    clock = Clock()
    tracer = Tracer(clock, capacity=2)
    seen = []
    tracer.add_sink(seen.append)
    for i in range(5):
        tracer.instant("t", f"e{i}")
    assert [e.name for e in seen] == [f"e{i}" for i in range(5)]
    assert len(tracer.events) == 2  # ring still bounded


def test_end_twice_records_once():
    clock = Clock()
    tracer = Tracer(clock)
    span = tracer.begin("t", "once")
    tracer.end(span)
    tracer.end(span)
    assert len(tracer.events) == 1


def test_complete_rejects_negative_interval():
    tracer = Tracer(Clock())
    with pytest.raises(ValueError):
        tracer.complete("t", "bad", 1.0, 0.5)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(Clock(), capacity=0)


def test_tracks_are_sorted_unique():
    tracer = Tracer(Clock())
    tracer.instant("b", "x")
    tracer.instant("a", "y")
    tracer.instant("b", "z")
    assert tracer.tracks() == ["a", "b"]
