"""TraceQuery: filters, temporal joins, and invariant helpers."""

import pytest

from repro.trace import Tracer, TraceQuery


class Clock:
    def __init__(self):
        self.now = 0.0


@pytest.fixture
def query():
    clock = Clock()
    tracer = Tracer(clock)
    tracer.instant("mgr", "reserve", "slot", slot=1)
    tracer.counter("c-0", "depth", 3)
    span = tracer.begin("mgr", "slot", "slot", slot=1)
    clock.now = 0.01
    tracer.end(span)
    clock.now = 0.012
    batch = tracer.begin("c-0", "batch", "consumer")
    clock.now = 0.02
    tracer.end(batch, items=5)
    tracer.counter("c-0", "depth", 9)
    tracer.instant("mgr", "reserve", "slot", slot=4)
    return TraceQuery(tracer)


def test_filters(query):
    assert len(query.events) == len(query) == 6
    assert [e.name for e in query.spans()] == ["slot", "batch"]
    assert [e.args["slot"] for e in query.instants(name="reserve")] == [1, 4]
    assert query.spans(track="c-0")[0].args == {"items": 5}
    big = query.instants(where=lambda e: e.args.get("slot", 0) > 2)
    assert [e.args["slot"] for e in big] == [4]


def test_counter_series(query):
    assert query.counter_series("depth", "c-0") == [(0.0, 3), (0.02, 9)]
    assert query.counter_series("missing") == []


def test_between_is_half_open(query):
    names = [e.name for e in query.between(0.0, 0.012)]
    assert "batch" not in names  # starts exactly at 0.012
    assert "slot" in names
    assert [e.name for e in query.between(0.012, 1.0)][0] == "batch"


def test_last_before_and_first_after(query):
    before = query.last_before(0.012, name="reserve")
    assert before is not None and before.args["slot"] == 1
    # inclusive picks up events at exactly t
    at = query.last_before(0.0, inclusive=True, name="reserve")
    assert at is not None
    assert query.last_before(0.0, name="reserve") is None
    after = query.first_after(0.01, name="reserve")
    assert after is not None and after.args["slot"] == 4


def test_covering(query):
    covering = query.covering(0.015)
    assert [e.name for e in covering] == ["batch"]
    assert query.covering(0.5) == []


def test_assert_each_preceded_by(query):
    slots = query.spans(name="slot")
    query.assert_each_preceded_by(slots, 0.1, name="reserve")
    batches = query.spans(name="batch")
    with pytest.raises(AssertionError, match="no antecedent"):
        query.assert_each_preceded_by(batches, 0.001, name="reserve")


def test_assert_no_overlap(query):
    query.assert_no_overlap(query.spans())  # slot ends as batch starts: ok
    clock = Clock()
    tracer = Tracer(clock)
    a = tracer.begin("t", "a")
    clock.now = 0.5
    b = tracer.begin("t", "b")
    clock.now = 1.0
    tracer.end(a)
    tracer.end(b)
    q = TraceQuery(tracer)
    with pytest.raises(AssertionError, match="overlaps"):
        q.assert_no_overlap(q.spans())
