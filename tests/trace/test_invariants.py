"""Temporal invariants asserted over recorded traces.

These are the properties aggregate counters cannot state: *ordering*
between reservations, slot firings, batches and power transitions.
"""

import pytest

from repro.trace import TraceQuery, record_run
from repro.trace.power import RESIDENCY, WAKEUP

#: Generous causality horizon: a reservation is never further than the
#: response bound L (40 ms) plus one slot Δ ahead of its slot firing.
HORIZON_S = 0.1


@pytest.fixture(scope="module")
def query(webserver_run):
    return TraceQuery(webserver_run.tracer)


def test_every_slot_firing_was_reserved(query):
    slots = query.spans(name="slot", category="slot")
    assert slots, "expected fired slots in a webserver run"
    query.assert_each_preceded_by(
        slots, HORIZON_S, name="reserve", track="core0.mgr"
    )


def test_batches_follow_their_slot_or_overflow(query):
    for consumer in ("consumer-0", "consumer-1"):
        batches = query.spans(name="batch", track=consumer)
        assert batches
        # A batch is triggered by a fired slot or by an overflow wake.
        for b in batches:
            slot = query.last_before(
                b.ts_s, inclusive=True, name="slot", category="slot"
            )
            overflow = query.last_before(
                b.ts_s, inclusive=True, name="overflow", track=consumer
            )
            anchors = [e.ts_s for e in (slot, overflow) if e is not None]
            assert anchors and b.ts_s - max(anchors) <= HORIZON_S


def test_batches_on_one_consumer_never_overlap(query):
    for consumer in ("consumer-0", "consumer-1", "consumer-2", "consumer-3"):
        query.assert_no_overlap(query.spans(name="batch", track=consumer))


def test_residency_segments_tile_the_run(webserver_run, query):
    for core in ("core0", "core1"):
        segments = query.spans(category=RESIDENCY, track=core)
        assert segments
        query.assert_no_overlap(segments)
        assert segments[0].ts_s == 0.0
        assert segments[-1].end_s == pytest.approx(webserver_run.duration_s)
        for a, b in zip(segments, segments[1:]):
            assert b.ts_s == pytest.approx(a.end_s)


def test_wakeups_match_ledger_count(webserver_run, query):
    wakeups = query.instants(category=WAKEUP, track="core0")
    assert len(wakeups) == webserver_run.consumer_core_wakeups


def test_wakeups_are_explained_by_reservations_or_overflows(query):
    wakeups = query.instants(category=WAKEUP, track="core0")
    assert wakeups
    for w in wakeups:
        reserve = query.last_before(
            w.ts_s, inclusive=True, name="reserve", track="core0.mgr"
        )
        overflow = query.last_before(
            w.ts_s, inclusive=True, name="overflow", category="buffer"
        )
        anchors = [e.ts_s for e in (reserve, overflow) if e is not None]
        assert anchors and w.ts_s - max(anchors) <= HORIZON_S, (
            f"unexplained core wakeup at t={w.ts_s:g}"
        )


def test_watchdog_recoveries_bounded_by_one_slot():
    """Under lost signals, a watchdog-recovered slot is at most one
    slot Δ late (the resilience latency bound's extra term)."""
    run = record_run("PBPL", "lost-signals", duration_s=0.8)
    q = TraceQuery(run.tracer)
    lost = q.instants(name="signal.lost")
    recoveries = q.instants(name="watchdog.recovery")
    assert lost, "lost-signals scenario must lose signals"
    assert recoveries, "watchdog must recover lost slots"
    slot_s = 5e-3  # StandardParams slot size Δ
    for r in recoveries:
        assert 0 <= r.args["late_s"] <= slot_s + 1e-9
    # Every recovery pairs with an earlier lost signal on its track.
    q.assert_each_preceded_by(recoveries, HORIZON_S, name="signal.lost")


def test_fault_windows_recorded_for_chaos_scenarios():
    run = record_run("PBPL", "stall", duration_s=0.6)
    q = TraceQuery(run.tracer)
    windows = q.spans(category="fault", track="faults")
    assert [w.name for w in windows] == ["ProducerStall"]
    w = windows[0]
    assert 0 <= w.ts_s < w.end_s <= run.duration_s
