"""Exporters: Chrome trace-event structure, byte stability, validation."""

import json

import pytest

from repro.trace import (
    Tracer,
    chrome_trace_dict,
    to_chrome_json,
    to_text_timeline,
    validate_chrome_trace,
)


class Clock:
    def __init__(self):
        self.now = 0.0


def small_tracer():
    clock = Clock()
    tracer = Tracer(clock)
    tracer.counter("core0", "power_w", 0.12)
    tracer.instant("mgr", "reserve", "slot", slot=2, consumer="c-0")
    span = tracer.begin("mgr", "slot", "slot", slot=2)
    clock.now = 0.005
    tracer.end(span, activated=1)
    return tracer


def test_chrome_dict_structure():
    doc = chrome_trace_dict(small_tracer())
    events = doc["traceEvents"]
    metas = [e for e in events if e["ph"] == "M"]
    assert {m["args"]["name"] for m in metas} == {"core0", "mgr"}
    # tids are 1-based, assigned by sorted track name
    tids = {m["args"]["name"]: m["tid"] for m in metas}
    assert tids == {"core0": 1, "mgr": 2}

    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == 1
    assert spans[0]["ts"] == 0.0
    assert spans[0]["dur"] == pytest.approx(5000.0)  # µs
    assert spans[0]["args"] == {"slot": 2, "activated": 1}

    instants = [e for e in events if e["ph"] == "i"]
    assert instants[0]["s"] == "t"

    counters = [e for e in events if e["ph"] == "C"]
    assert counters[0]["args"] == {"power_w": 0.12}


def test_chrome_json_is_byte_stable():
    assert to_chrome_json(small_tracer()) == to_chrome_json(small_tracer())


def test_chrome_json_passes_own_validation():
    payload = to_chrome_json(small_tracer())
    assert validate_chrome_trace(payload) == []
    assert validate_chrome_trace(json.loads(payload)) == []


def test_text_timeline_format_and_stability():
    text = to_text_timeline(small_tracer())
    assert text == to_text_timeline(small_tracer())
    lines = text.splitlines()
    assert len(lines) == 3
    assert "[ctr ] power_w = 0.12" in lines[0]
    assert "[inst] reserve" in lines[1]
    assert "consumer=c-0" in lines[1]  # args sorted, formatted
    assert "[span] slot (5.000000 ms)" in lines[2]


def test_non_finite_floats_are_stringified():
    tracer = Tracer(Clock())
    tracer.instant("t", "odd", value=float("nan"), hi=float("inf"))
    payload = to_chrome_json(tracer)
    doc = json.loads(payload)  # must stay strictly valid JSON
    [inst] = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert inst["args"] == {"value": "nan", "hi": "inf"}


def test_validator_catches_structural_problems():
    assert validate_chrome_trace("{not json") != []
    assert validate_chrome_trace({"nope": 1}) != []
    bad_events = {
        "traceEvents": [
            {"ph": "?", "pid": 1, "tid": 1, "name": "x", "ts": 0},
            {"ph": "X", "pid": 1, "tid": 1, "name": "x", "ts": -1},
            {"ph": "C", "pid": 1, "tid": 1, "name": "c", "ts": 0,
             "args": {"v": "high"}},
        ]
    }
    errors = validate_chrome_trace(bad_events)
    assert any("unknown phase" in e for e in errors)
    assert any("'dur'" in e for e in errors)
    assert any("numeric" in e for e in errors)


def test_validator_caps_error_list():
    events = [{"ph": "?"} for _ in range(50)]
    errors = validate_chrome_trace({"traceEvents": events})
    assert len(errors) <= 21
    assert "more" in errors[-1]
