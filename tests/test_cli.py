"""Tests for the command-line interface (in-process, short runs)."""

import pytest

from repro.cli import main


COMMON = ["--duration", "0.8", "--replicates", "1", "--seed", "3"]


def test_fig9_runs_and_prints(capsys, tmp_path):
    out_file = tmp_path / "fig9.txt"
    csv_file = tmp_path / "fig9.csv"
    code = main(
        ["fig9", "--consumers", "2", *COMMON, "--out", str(out_file), "--csv", str(csv_file)]
    )
    assert code == 0
    captured = capsys.readouterr().out
    assert "Figure 9" in captured
    assert "PBPL" in captured
    assert out_file.exists()
    assert "implementation" in csv_file.read_text().splitlines()[0]


def test_accounting_runs(capsys):
    assert main(["accounting", *COMMON]) == 0
    assert "wakeup accounting" in capsys.readouterr().out


def test_sanity_passes(capsys):
    assert main(["sanity", *COMMON]) == 0
    assert "PASS" in capsys.readouterr().out


def test_trace_generate_and_inspect(capsys, tmp_path):
    path = tmp_path / "t.npz"
    assert (
        main(
            [
                "trace",
                "generate",
                "--kind",
                "poisson",
                "--rate",
                "500",
                "--duration",
                "2.0",
                "-o",
                str(path),
            ]
        )
        == 0
    )
    assert path.exists()
    capsys.readouterr()
    assert main(["trace", "inspect", str(path)]) == 0
    out = capsys.readouterr().out
    assert "mean rate" in out
    assert "500" in out


def test_trace_inspect_clf(capsys, tmp_path):
    log = tmp_path / "access.log"
    log.write_text(
        'h - - [30/Apr/1998:21:30:17 +0000] "GET /a HTTP/1.0" 200 1\n'
        'h - - [30/Apr/1998:21:30:19 +0000] "GET /b HTTP/1.0" 200 1\n'
    )
    assert main(["trace", "inspect", str(log)]) == 0
    assert "items     : 2" in capsys.readouterr().out


def test_tune_reports_knee(capsys):
    code = main(
        [
            "tune",
            "--consumers",
            "2",
            "--candidates_ms",
            "5,10",
            *COMMON,
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "suggested Δ" in out
    assert "◀ best" in out


def test_waveform_renders(capsys):
    assert (
        main(
            [
                "waveform",
                "--impl",
                "BP",
                "--consumers",
                "2",
                "--window_s",
                "0.1",
                *COMMON,
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "power waveform" in out
    assert "wakeup impulses" in out
    assert "█" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["nope"])


def test_bad_counts_rejected():
    with pytest.raises(SystemExit):
        main(["fig10", "--counts", "a,b"])


@pytest.mark.slow
def test_fig10_tiny_grid(capsys):
    assert main(["fig10", "--counts", "2,3", *COMMON]) == 0
    out = capsys.readouterr().out
    assert "2 consumers" in out and "3 consumers" in out


def test_chaos_smoke_runs_and_passes(capsys, tmp_path):
    out_file = tmp_path / "resilience.md"
    code = main(
        [
            "chaos",
            "--smoke",
            "--consumers",
            "2",
            *COMMON,
            "--out",
            str(out_file),
        ]
    )
    assert code == 0
    captured = capsys.readouterr().out
    assert "# Resilience report" in captured
    assert "| combined |" in captured
    assert out_file.exists()


def test_chaos_json_mode(capsys):
    import json

    code = main(["chaos", "--smoke", "--consumers", "2", "--json", *COMMON])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["passed"] is True
    assert {s["scenario"] for s in payload["scenarios"]} == {
        "clean",
        "lost-signals",
        "combined",
    }


def test_chaos_reports_are_seed_deterministic(capsys):
    args = ["chaos", "--smoke", "--consumers", "2", "--json", *COMMON]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    assert capsys.readouterr().out == first


def test_sanity_json_mode(capsys):
    import json

    assert main(["sanity", "--json", *COMMON]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["all_passed"] is True
    assert len(payload["checks"]) == 4


def test_chaos_baselines_table(capsys):
    code = main(
        ["chaos", "--smoke", "--baselines", "--consumers", "2",
         "--duration", "0.5", "--replicates", "1", "--seed", "3"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "## Baseline degradation" in out
    for impl in ("Mutex", "Sem", "BP", "SPBP"):
        assert f"| {impl} |" in out
    assert "## Worst consumer per scenario" in out


def test_trace_record_writes_perfetto_json(capsys, tmp_path):
    import json

    out = tmp_path / "trace.json"
    text = tmp_path / "trace.txt"
    code = main(
        ["trace", "record", "--duration", "0.3", "--impl", "PBPL",
         "--scenario", "clean", "-o", str(out), "--text", str(text)]
    )
    assert code == 0
    doc = json.loads(out.read_text())
    assert doc["traceEvents"]
    assert text.read_text().splitlines()
    printed = capsys.readouterr().out
    assert "events" in printed and "diff" in printed


def test_trace_record_rejects_unknown_scenario(tmp_path):
    with pytest.raises(ValueError, match="unknown scenario"):
        main(["trace", "record", "--scenario", "nope",
              "-o", str(tmp_path / "t.json")])


def test_trace_smoke_gate(capsys, tmp_path):
    artifact = tmp_path / "smoke.json"
    code = main(["trace", "--smoke", "-o", str(artifact)])
    assert code == 0
    out = capsys.readouterr().out
    assert "trace smoke: OK" in out
    assert artifact.exists()


def test_trace_without_subcommand_or_smoke_errors(capsys):
    assert main(["trace"]) == 2
    assert "choose a subcommand" in capsys.readouterr().err


RECORD_SHORT = ["trace", "record", "--duration", "0.2", "--consumers", "2",
                "--scenario", "clean"]


def test_trace_record_stream_writes_jsonl(capsys, tmp_path):
    from repro.trace import read_trace

    out = tmp_path / "t.jsonl"
    assert main([*RECORD_SHORT, "--stream", "-o", str(out)]) == 0
    events, reader = read_trace(out)
    assert events
    assert reader.header["schema_version"] == "1.0"
    assert reader.meta["impl"] == "PBPL"
    assert reader.footer["events"] == len(events)
    assert "streamed" in capsys.readouterr().out


def test_trace_record_stream_survives_ring_overflow(capsys, tmp_path):
    from repro.trace import read_trace

    out = tmp_path / "o.jsonl"
    assert main([*RECORD_SHORT, "--stream", "--capacity", "50",
                 "-o", str(out)]) == 0
    events, reader = read_trace(out)
    assert len(events) > 50  # more than the ring could hold
    assert reader.footer["dropped"] > 0
    assert "dropped" in capsys.readouterr().out


def test_trace_record_to_stdout_keeps_pipe_clean(capsys):
    import json

    assert main([*RECORD_SHORT, "-o", "-"]) == 0
    captured = capsys.readouterr()
    json.loads(captured.out)  # stdout is exactly the trace JSON
    assert "events" in captured.err  # summary moved to stderr


def test_trace_record_stream_to_stdout(capsys):
    import json

    assert main([*RECORD_SHORT, "--stream", "-o", "-"]) == 0
    captured = capsys.readouterr()
    lines = captured.out.strip().splitlines()
    header = json.loads(lines[0])
    assert header["schema"] == "repro.trace"
    assert "footer" in json.loads(lines[-1])
    assert "streamed" in captured.err


def test_trace_record_rejects_unwritable_dir_before_running(capsys, tmp_path):
    missing = tmp_path / "no" / "such" / "dir" / "t.json"
    assert main([*RECORD_SHORT, "-o", str(missing)]) == 2
    err = capsys.readouterr().err
    assert "does not exist" in err


def test_trace_diff_identical_and_changed(capsys, tmp_path):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    c = tmp_path / "c.jsonl"
    assert main([*RECORD_SHORT, "--stream", "-o", str(a)]) == 0
    assert main([*RECORD_SHORT, "--stream", "-o", str(b)]) == 0
    assert main(["trace", "record", "--duration", "0.2", "--consumers", "2",
                 "--scenario", "clean", "--seed", "99", "--stream",
                 "-o", str(c)]) == 0
    capsys.readouterr()
    assert main(["trace", "diff", str(a), str(b)]) == 0
    assert "no structural or energy drift" in capsys.readouterr().out
    assert main(["trace", "diff", str(a), str(c)]) == 1
    out = capsys.readouterr().out
    assert "consumer-" in out  # names the affected consumers


def test_trace_diff_json_mode(capsys, tmp_path):
    import json

    a = tmp_path / "a.jsonl"
    assert main([*RECORD_SHORT, "--stream", "-o", str(a)]) == 0
    capsys.readouterr()
    assert main(["trace", "diff", str(a), str(a), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["empty"] is True


def test_trace_diff_unreadable_input_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not a trace\n")
    with pytest.raises(SystemExit):
        main(["trace", "diff", str(bad), str(bad)])


def test_trace_report_renders_flamegraph(capsys, tmp_path):
    trace = tmp_path / "t.jsonl"
    report = tmp_path / "report.txt"
    assert main([*RECORD_SHORT, "--stream", "-o", str(trace)]) == 0
    capsys.readouterr()
    assert main(["trace", "report", str(trace), "--top", "5",
                 "--out", str(report)]) == 0
    out = capsys.readouterr().out
    assert "trace report — PBPL × clean" in out
    assert "self ms" in out and "joules" in out
    assert "top wakeup causes" in out
    assert "ledger total" in out
    assert "trace report — PBPL × clean" in report.read_text()


def test_trace_bless_writes_golden_spec(capsys, tmp_path):
    from repro.cli import GOLDEN_SPEC
    from repro.trace import read_trace

    out = tmp_path / "golden.jsonl"
    assert main(["trace", "bless", "--name", "pbpl_smoke", "-o", str(out)]) == 0
    events, reader = read_trace(out)
    assert reader.meta["impl"] == GOLDEN_SPEC["impl"]
    assert reader.meta["seed"] == GOLDEN_SPEC["seed"]
    assert events
    assert "blessed" in capsys.readouterr().out


def test_trace_bless_matrix_writes_every_golden(capsys, tmp_path):
    from repro.cli import GOLDEN_SPECS
    from repro.trace import read_trace

    assert main(["trace", "bless", "--out-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    for name, spec in GOLDEN_SPECS.items():
        path = tmp_path / f"{name}.trace.jsonl"
        assert path.exists()
        _events, reader = read_trace(path)
        assert reader.meta["impl"] == spec["impl"]
        assert reader.meta["scenario"] == spec["scenario"]
    assert out.count("blessed") == len(GOLDEN_SPECS)


def test_trace_bless_output_needs_a_single_name(capsys, tmp_path):
    assert main(["trace", "bless", "-o", str(tmp_path / "g.jsonl")]) == 2
    assert "--name" in capsys.readouterr().err


def test_trace_report_window(capsys, tmp_path):
    trace = tmp_path / "t.jsonl"
    assert main([*RECORD_SHORT, "--stream", "-o", str(trace)]) == 0
    capsys.readouterr()
    assert main(
        ["trace", "report", str(trace), "--from", "0.1", "--to", "0.2"]
    ) == 0
    out = capsys.readouterr().out
    assert "[0.1, 0.2)s" in out
    # Windowed totals cannot reconcile against the full-run ledger.
    assert "ledger total" not in out


def test_trace_report_rejects_empty_window(capsys, tmp_path):
    trace = tmp_path / "t.jsonl"
    assert main([*RECORD_SHORT, "--stream", "-o", str(trace)]) == 0
    capsys.readouterr()
    assert main(
        ["trace", "report", str(trace), "--from", "0.2", "--to", "0.1"]
    ) == 2
    assert "--to must be after --from" in capsys.readouterr().err


def test_chaos_scenario_filter(capsys):
    assert (
        main(
            ["chaos", "--scenarios", "clean,burst", "--duration", "0.4",
             "--consumers", "2"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "| clean |" in out and "| burst |" in out
    assert "| stall |" not in out


def test_chaos_rejects_unknown_scenario_name(capsys):
    assert main(["chaos", "--scenarios", "no-such-fault"]) == 2
    assert "unknown scenario" in capsys.readouterr().err
