"""Tests for the stochastic trace generators."""

import numpy as np
import pytest

from repro.workloads import (
    mmpp_trace,
    nonhomogeneous_poisson,
    poisson_trace,
    worldcup_like_trace,
)


def rng(seed=0):
    return np.random.default_rng(seed)


# -- Poisson ------------------------------------------------------------------


def test_poisson_mean_rate_close_to_requested():
    trace = poisson_trace(1000.0, 10.0, rng())
    assert trace.mean_rate == pytest.approx(1000.0, rel=0.05)


def test_poisson_reproducible_with_seed():
    a = poisson_trace(100.0, 5.0, rng(42))
    b = poisson_trace(100.0, 5.0, rng(42))
    assert np.array_equal(a.times, b.times)


def test_poisson_zero_rate_is_empty():
    assert poisson_trace(0.0, 5.0, rng()).n_items == 0


def test_poisson_validation():
    with pytest.raises(ValueError):
        poisson_trace(-1.0, 5.0, rng())
    with pytest.raises(ValueError):
        poisson_trace(1.0, 0.0, rng())


def test_poisson_exponential_gaps():
    trace = poisson_trace(1000.0, 20.0, rng(1))
    gaps = trace.inter_arrivals()
    # Exponential: mean ≈ std.
    assert gaps.std() == pytest.approx(gaps.mean(), rel=0.1)


# -- MMPP --------------------------------------------------------------------


def test_mmpp_mean_rate_between_regime_rates():
    trace = mmpp_trace([100.0, 2000.0], [0.5, 0.5], 20.0, rng(2))
    assert 100.0 < trace.mean_rate < 2000.0


def test_mmpp_burstier_than_poisson():
    flat = poisson_trace(1000.0, 20.0, rng(3))
    bursty = mmpp_trace([100.0, 1900.0], [0.5, 0.5], 20.0, rng(3))
    assert bursty.burstiness(0.1) > 2 * flat.burstiness(0.1)


def test_mmpp_single_state_is_poisson_like():
    trace = mmpp_trace([500.0], [1.0], 10.0, rng(4))
    assert trace.mean_rate == pytest.approx(500.0, rel=0.1)


def test_mmpp_validation():
    with pytest.raises(ValueError):
        mmpp_trace([], [], 10.0, rng())
    with pytest.raises(ValueError):
        mmpp_trace([1.0], [1.0, 2.0], 10.0, rng())
    with pytest.raises(ValueError):
        mmpp_trace([1.0], [0.0], 10.0, rng())


# -- thinning --------------------------------------------------------------


def test_nhpp_respects_rate_function():
    # Rate = 1000 in first half, 0 in second half.
    def rate_fn(t):
        return np.where(t < 5.0, 1000.0, 0.0)

    trace = nonhomogeneous_poisson(rate_fn, 1000.0, 10.0, rng(5))
    assert np.all(trace.times < 5.0)
    assert trace.n_items == pytest.approx(5000, rel=0.1)


def test_nhpp_rejects_underestimated_bound():
    def rate_fn(t):
        return np.full_like(t, 2000.0)

    with pytest.raises(ValueError, match="exceeds rate_max"):
        nonhomogeneous_poisson(rate_fn, 1000.0, 1.0, rng(6))


# -- world-cup-like -------------------------------------------------------------


def test_worldcup_mean_rate_honoured():
    trace = worldcup_like_trace(2000.0, 10.0, rng(7))
    assert trace.mean_rate == pytest.approx(2000.0, rel=0.15)


def test_worldcup_is_strongly_bursty():
    """The defining property the paper needs: sporadic rate changes."""
    flat = poisson_trace(2000.0, 10.0, rng(8))
    wc = worldcup_like_trace(2000.0, 10.0, rng(8))
    assert wc.burstiness(0.1) > 3 * flat.burstiness(0.1)


def test_worldcup_rate_swings_an_order_of_magnitude():
    trace = worldcup_like_trace(2000.0, 10.0, rng(9), flash_magnitude=8.0)
    _, rates = trace.rate_profile(0.25)
    nonzero = rates[rates > 0]
    assert nonzero.max() / max(nonzero.min(), 1.0) > 8.0


def test_worldcup_reproducible():
    a = worldcup_like_trace(500.0, 5.0, rng(10))
    b = worldcup_like_trace(500.0, 5.0, rng(10))
    assert np.array_equal(a.times, b.times)


def test_worldcup_different_seeds_differ():
    a = worldcup_like_trace(500.0, 5.0, rng(11))
    b = worldcup_like_trace(500.0, 5.0, rng(12))
    assert not np.array_equal(a.times, b.times)


def test_worldcup_validation():
    with pytest.raises(ValueError):
        worldcup_like_trace(0.0, 10.0, rng())
    with pytest.raises(ValueError):
        worldcup_like_trace(100.0, 10.0, rng(), diurnal_depth=1.5)
    with pytest.raises(ValueError):
        worldcup_like_trace(100.0, 10.0, rng(), flash_decay_fraction=0.0)


def test_worldcup_flash_crowds_visible_in_profile():
    """With huge flash magnitude the peak rate dwarfs the median."""
    trace = worldcup_like_trace(
        1000.0, 10.0, rng(13), flash_magnitude=12.0, n_flash_crowds=2
    )
    _, rates = trace.rate_profile(0.2)
    assert rates.max() > 3 * np.median(rates)
