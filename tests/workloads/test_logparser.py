"""Tests for the Common Log Format parser and writer."""

import io

import numpy as np
import pytest

from repro.workloads import (
    LogParseError,
    Trace,
    parse_clf_timestamp,
    trace_from_clf,
    write_clf,
)

SAMPLE = """\
host1 - - [30/Apr/1998:21:30:17 +0000] "GET /images/logo.gif HTTP/1.0" 200 1024
host2 - - [30/Apr/1998:21:30:18 +0000] "GET /english/index.html HTTP/1.0" 200 881
host1 - - [30/Apr/1998:21:30:20 +0000] "GET /english/images/nav.gif HTTP/1.0" 304 -
"""


def test_parse_timestamp_utc():
    dt = parse_clf_timestamp("30/Apr/1998:21:30:17 +0000")
    assert (dt.year, dt.month, dt.day) == (1998, 4, 30)
    assert (dt.hour, dt.minute, dt.second) == (21, 30, 17)


def test_parse_timestamp_with_offset():
    plus = parse_clf_timestamp("30/Apr/1998:21:30:17 +0200")
    zulu = parse_clf_timestamp("30/Apr/1998:19:30:17 +0000")
    assert plus.timestamp() == zulu.timestamp()


def test_parse_timestamp_invalid():
    with pytest.raises(LogParseError):
        parse_clf_timestamp("not a timestamp")
    with pytest.raises(LogParseError):
        parse_clf_timestamp("30/Xxx/1998:21:30:17 +0000")


def test_trace_from_clf_stream():
    trace = trace_from_clf(io.StringIO(SAMPLE))
    assert trace.n_items == 3
    assert trace.times == pytest.approx([0.0, 1.0, 3.0])


def test_trace_from_clf_time_scale():
    trace = trace_from_clf(io.StringIO(SAMPLE), time_scale=2.0)
    assert trace.times == pytest.approx([0.0, 0.5, 1.5])


def test_malformed_lines_skipped_by_default():
    noisy = SAMPLE + "garbage line\n\n"
    trace = trace_from_clf(io.StringIO(noisy))
    assert trace.n_items == 3


def test_strict_mode_raises_on_garbage():
    noisy = SAMPLE + "garbage line\n"
    with pytest.raises(LogParseError):
        trace_from_clf(io.StringIO(noisy), strict=True)


def test_empty_input_rejected():
    with pytest.raises(LogParseError):
        trace_from_clf(io.StringIO(""))


def test_invalid_time_scale():
    with pytest.raises(ValueError):
        trace_from_clf(io.StringIO(SAMPLE), time_scale=0.0)


def test_file_roundtrip(tmp_path):
    path = tmp_path / "synthetic.log"
    # Integer-second arrivals survive CLF's 1 s resolution exactly.
    original = Trace(np.array([0.0, 1.0, 2.0, 5.0]), 6.0, "orig")
    write_clf(original, path)
    back = trace_from_clf(path)
    assert back.times == pytest.approx(original.times)


def test_file_roundtrip_subsecond_rounds_down(tmp_path):
    path = tmp_path / "synthetic.log"
    original = Trace(np.array([0.0, 1.4, 2.9]), 4.0, "orig")
    write_clf(original, path)
    back = trace_from_clf(path)
    assert back.times == pytest.approx([0.0, 1.0, 2.0])  # CLF is 1 s grained


def test_out_of_order_lines_sorted():
    shuffled = (
        'h - - [30/Apr/1998:21:30:20 +0000] "GET /b HTTP/1.0" 200 1\n'
        'h - - [30/Apr/1998:21:30:17 +0000] "GET /a HTTP/1.0" 200 1\n'
    )
    trace = trace_from_clf(io.StringIO(shuffled))
    assert trace.times == pytest.approx([0.0, 3.0])
