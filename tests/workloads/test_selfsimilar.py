"""Tests for the self-similar ON/OFF generator and Hurst estimation."""

import numpy as np
import pytest

from repro.workloads import (
    estimate_hurst,
    pareto_onoff_trace,
    poisson_trace,
)


def rng(seed=0):
    return np.random.default_rng(seed)


def test_mean_rate_approximately_honoured():
    trace = pareto_onoff_trace(2000.0, 20.0, rng(0))
    # Heavy tails converge slowly; generous tolerance.
    assert trace.mean_rate == pytest.approx(2000.0, rel=0.35)


def test_reproducible():
    a = pareto_onoff_trace(500.0, 5.0, rng(1))
    b = pareto_onoff_trace(500.0, 5.0, rng(1))
    assert np.array_equal(a.times, b.times)


def test_validation():
    with pytest.raises(ValueError):
        pareto_onoff_trace(0.0, 5.0, rng())
    with pytest.raises(ValueError):
        pareto_onoff_trace(100.0, 5.0, rng(), n_sources=0)
    with pytest.raises(ValueError):
        pareto_onoff_trace(100.0, 5.0, rng(), alpha_on=2.5)
    with pytest.raises(ValueError):
        pareto_onoff_trace(100.0, 5.0, rng(), alpha_off=1.0)
    with pytest.raises(ValueError):
        pareto_onoff_trace(100.0, 5.0, rng(), mean_on_s=0.0)


def test_burstier_than_poisson_at_coarse_scales():
    """The self-similar signature: burstiness survives aggregation."""
    ss = pareto_onoff_trace(2000.0, 30.0, rng(2))
    flat = poisson_trace(2000.0, 30.0, rng(2))
    # At a coarse 1 s scale Poisson has almost no variance left; the
    # ON/OFF aggregate keeps plenty.
    assert ss.burstiness(1.0) > 3 * flat.burstiness(1.0)


def test_hurst_distinguishes_poisson_from_selfsimilar():
    flat = poisson_trace(3000.0, 30.0, rng(3))
    ss = pareto_onoff_trace(3000.0, 30.0, rng(3))
    h_flat = estimate_hurst(flat)
    h_ss = estimate_hurst(ss)
    assert h_flat < 0.65  # ≈ 0.5 in theory
    assert h_ss > h_flat + 0.15
    assert h_ss > 0.65  # in the measured web-traffic range


def test_hurst_estimator_validation():
    with pytest.raises(ValueError, match="too few items"):
        estimate_hurst(poisson_trace(1.0, 5.0, rng(4)))


def test_hurst_bounded():
    trace = pareto_onoff_trace(1000.0, 20.0, rng(5))
    assert 0.0 <= estimate_hurst(trace) <= 1.0
