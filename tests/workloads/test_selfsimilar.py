"""Tests for the self-similar ON/OFF generator and Hurst estimation."""

import numpy as np
import pytest

from repro.workloads import (
    estimate_hurst,
    pareto_onoff_trace,
    poisson_trace,
)


def rng(seed=0):
    return np.random.default_rng(seed)


def test_mean_rate_approximately_honoured():
    trace = pareto_onoff_trace(2000.0, 20.0, rng(0))
    # Heavy tails converge slowly; generous tolerance.
    assert trace.mean_rate == pytest.approx(2000.0, rel=0.35)


def test_reproducible():
    a = pareto_onoff_trace(500.0, 5.0, rng(1))
    b = pareto_onoff_trace(500.0, 5.0, rng(1))
    assert np.array_equal(a.times, b.times)


def test_validation():
    with pytest.raises(ValueError):
        pareto_onoff_trace(0.0, 5.0, rng())
    with pytest.raises(ValueError):
        pareto_onoff_trace(100.0, 5.0, rng(), n_sources=0)
    with pytest.raises(ValueError):
        pareto_onoff_trace(100.0, 5.0, rng(), alpha_on=2.5)
    with pytest.raises(ValueError):
        pareto_onoff_trace(100.0, 5.0, rng(), alpha_off=1.0)
    with pytest.raises(ValueError):
        pareto_onoff_trace(100.0, 5.0, rng(), mean_on_s=0.0)


def test_scalar_pareto_draws_match_size1_bit_stream():
    """The generator's scalar ``rng.pareto(α)`` draws consume the exact
    bit-stream positions (and yield the exact values) of the
    ``size=1`` array draws they replaced."""
    a = np.random.default_rng(42)
    b = np.random.default_rng(42)
    for alpha in (1.4, 1.6, 1.4, 1.9, 1.1):
        scalar = float(a.pareto(alpha))
        array = float(b.pareto(alpha, size=1)[0])
        assert scalar == array
    assert float(a.random()) == float(b.random())


def test_trace_bitwise_matches_size1_reference():
    """End-to-end: the optimized generator replays the pre-optimization
    draw structure (per-period ``size=1`` arrays) byte-for-byte."""
    seed = 2014
    kwargs = dict(
        mean_rate_per_s=500.0, duration_s=2.0, n_sources=8,
        alpha_on=1.4, alpha_off=1.6, mean_on_s=0.2, mean_off_s=0.6,
    )
    got = pareto_onoff_trace(rng=np.random.default_rng(seed), **kwargs)

    # The old implementation, verbatim draw-for-draw.
    rng = np.random.default_rng(seed)
    duty = kwargs["mean_on_s"] / (kwargs["mean_on_s"] + kwargs["mean_off_s"])
    rate_per_source = kwargs["mean_rate_per_s"] / (kwargs["n_sources"] * duty)

    def pareto_lengths(alpha, mean, size):
        x_m = mean * (alpha - 1) / alpha
        return x_m * (1 + rng.pareto(alpha, size=size))

    pieces = []
    for _ in range(kwargs["n_sources"]):
        t = float(rng.uniform(0, kwargs["mean_on_s"] + kwargs["mean_off_s"]))
        on = bool(rng.random() < duty)
        while t < kwargs["duration_s"]:
            length = float(
                pareto_lengths(
                    kwargs["alpha_on"] if on else kwargs["alpha_off"],
                    kwargs["mean_on_s"] if on else kwargs["mean_off_s"],
                    1,
                )[0]
            )
            end = min(t + length, kwargs["duration_s"])
            if on and end > t:
                k = rng.poisson(rate_per_source * (end - t))
                if k:
                    pieces.append(rng.uniform(t, end, size=k))
            t = end
            on = not on
    want = np.sort(np.concatenate(pieces)) if pieces else np.empty(0)
    assert got.times.tolist() == want.tolist()


def test_burstier_than_poisson_at_coarse_scales():
    """The self-similar signature: burstiness survives aggregation."""
    ss = pareto_onoff_trace(2000.0, 30.0, rng(2))
    flat = poisson_trace(2000.0, 30.0, rng(2))
    # At a coarse 1 s scale Poisson has almost no variance left; the
    # ON/OFF aggregate keeps plenty.
    assert ss.burstiness(1.0) > 3 * flat.burstiness(1.0)


def test_hurst_distinguishes_poisson_from_selfsimilar():
    flat = poisson_trace(3000.0, 30.0, rng(3))
    ss = pareto_onoff_trace(3000.0, 30.0, rng(3))
    h_flat = estimate_hurst(flat)
    h_ss = estimate_hurst(ss)
    assert h_flat < 0.65  # ≈ 0.5 in theory
    assert h_ss > h_flat + 0.15
    assert h_ss > 0.65  # in the measured web-traffic range


def test_hurst_estimator_validation():
    with pytest.raises(ValueError, match="too few items"):
        estimate_hurst(poisson_trace(1.0, 5.0, rng(4)))


def test_hurst_bounded():
    trace = pareto_onoff_trace(1000.0, 20.0, rng(5))
    assert 0.0 <= estimate_hurst(trace) <= 1.0
