"""Tests for trace persistence and workload analysis."""

import numpy as np
import pytest

from repro.workloads import (
    Trace,
    load_trace,
    poisson_trace,
    save_trace,
    summarise_trace,
    worldcup_like_trace,
)
from repro.workloads.io import load_trace_cached, trace_cache_clear


def test_save_load_roundtrip(tmp_path):
    rng = np.random.default_rng(0)
    original = worldcup_like_trace(500.0, 4.0, rng)
    path = tmp_path / "trace.npz"
    save_trace(original, path)
    loaded = load_trace(path)
    assert np.array_equal(loaded.times, original.times)
    assert loaded.duration_s == original.duration_s
    assert loaded.name == original.name


def test_load_rejects_non_trace_npz(tmp_path):
    path = tmp_path / "other.npz"
    np.savez(path, stuff=np.arange(3))
    with pytest.raises(ValueError, match="not a trace archive"):
        load_trace(path)


def test_load_rejects_unknown_version(tmp_path):
    import json

    path = tmp_path / "future.npz"
    meta = json.dumps({"version": 99, "duration_s": 1.0, "name": "x"})
    np.savez(
        path,
        times=np.array([0.5]),
        meta=np.frombuffer(meta.encode(), dtype=np.uint8),
    )
    with pytest.raises(ValueError, match="version"):
        load_trace(path)


def test_empty_trace_roundtrip(tmp_path):
    original = Trace(np.array([]), 2.0, "empty")
    path = tmp_path / "empty.npz"
    save_trace(original, path)
    loaded = load_trace(path)
    assert loaded.n_items == 0
    assert loaded.duration_s == 2.0


def test_load_trace_cached_memoizes_per_file_state(tmp_path):
    rng = np.random.default_rng(4)
    path = tmp_path / "cached.npz"
    save_trace(poisson_trace(200.0, 1.0, rng), path)
    trace_cache_clear()
    first = load_trace_cached(path)
    assert load_trace_cached(path) is first  # memo hit: same object

    # Rewriting the file changes (mtime, size) → cache miss, fresh parse.
    import os

    save_trace(poisson_trace(300.0, 1.0, rng), path)
    os.utime(path, (path.stat().st_atime, path.stat().st_mtime + 10))
    second = load_trace_cached(path)
    assert second is not first
    assert not np.array_equal(second.times, first.times)
    trace_cache_clear()
    assert load_trace_cached(path) is not second  # cleared → reparsed


def test_load_trace_cached_detects_same_stat_rewrite(tmp_path):
    """Regression: a regenerated archive with identical (mtime, size)
    must not be served stale — the content digest catches what the
    stat signature cannot (``cp -p``, tar, sub-granularity rewrites)."""
    import os

    rng = np.random.default_rng(5)
    path = tmp_path / "twin.npz"
    save_trace(poisson_trace(200.0, 1.0, rng), path)
    stat = path.stat()
    trace_cache_clear()
    first = load_trace_cached(path)

    # Regenerate until the archive lands on the same byte size, then
    # pin the timestamps back — the stat signature is now identical.
    for _ in range(200):
        save_trace(poisson_trace(200.0, 1.0, rng), path)
        if path.stat().st_size == stat.st_size:
            break
    else:
        pytest.skip("could not produce a same-size archive")
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
    assert path.stat().st_size == stat.st_size
    assert path.stat().st_mtime_ns == stat.st_mtime_ns

    second = load_trace_cached(path)
    assert second is not first
    assert not np.array_equal(second.times, first.times)
    trace_cache_clear()


def test_summary_of_empty_trace():
    s = summarise_trace(Trace(np.array([]), 2.0, "empty"))
    assert s.n_items == 0
    assert s.mean_rate_per_s == 0.0


def test_summary_statistics_sane():
    rng = np.random.default_rng(1)
    trace = worldcup_like_trace(1000.0, 5.0, rng)
    s = summarise_trace(trace)
    assert s.n_items == trace.n_items
    assert s.mean_rate_per_s == pytest.approx(trace.mean_rate)
    assert s.peak_rate_per_s >= s.mean_rate_per_s
    assert s.p05_rate_per_s <= s.mean_rate_per_s
    assert s.peak_to_mean > 1.0
    assert -1.0 <= s.lag1_autocorrelation <= 1.0


def test_bursty_trace_summary_distinguishes_from_poisson():
    rng1, rng2 = np.random.default_rng(2), np.random.default_rng(2)
    flat = summarise_trace(poisson_trace(1000.0, 5.0, rng1))
    bursty = summarise_trace(worldcup_like_trace(1000.0, 5.0, rng2))
    assert bursty.burstiness_cv > 2 * flat.burstiness_cv
    assert bursty.lag1_autocorrelation > flat.lag1_autocorrelation + 0.2


def test_summary_render_contains_key_lines():
    rng = np.random.default_rng(3)
    text = summarise_trace(poisson_trace(100.0, 2.0, rng)).render()
    assert "mean rate" in text
    assert "burstiness" in text
