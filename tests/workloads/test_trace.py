"""Unit and property tests for the Trace abstraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import Trace, merge_traces


def make_trace(times, duration=10.0):
    return Trace(np.asarray(times, dtype=float), duration, "t")


def test_basic_properties():
    trace = make_trace([1.0, 2.0, 3.0])
    assert trace.n_items == 3
    assert len(trace) == 3
    assert trace.mean_rate == pytest.approx(0.3)
    assert list(trace) == [1.0, 2.0, 3.0]


def test_empty_trace_allowed():
    trace = make_trace([])
    assert trace.n_items == 0
    assert trace.mean_rate == 0.0


def test_unsorted_times_rejected():
    with pytest.raises(ValueError):
        make_trace([2.0, 1.0])


def test_times_outside_window_rejected():
    with pytest.raises(ValueError):
        make_trace([-1.0, 2.0])
    with pytest.raises(ValueError):
        make_trace([1.0, 10.0])  # duration is exclusive


def test_nonpositive_duration_rejected():
    with pytest.raises(ValueError):
        Trace(np.array([]), 0.0)


def test_inter_arrivals():
    trace = make_trace([1.0, 3.0, 6.0])
    assert trace.inter_arrivals() == pytest.approx([2.0, 3.0])


def test_shifted_rotates_and_wraps():
    trace = make_trace([1.0, 9.0], duration=10.0)
    shifted = trace.shifted(0.5)  # offset 5: 1→6, 9→4
    assert shifted.times == pytest.approx([4.0, 6.0])
    assert shifted.duration_s == 10.0


def test_shifted_preserves_item_count_and_rate():
    rng = np.random.default_rng(0)
    times = np.sort(rng.uniform(0, 10, 100))
    trace = Trace(times, 10.0)
    shifted = trace.shifted(0.37)
    assert shifted.n_items == 100
    assert shifted.mean_rate == pytest.approx(trace.mean_rate)


def test_shift_by_whole_turn_is_identity():
    trace = make_trace([1.0, 2.0, 3.0])
    assert trace.shifted(1.0).times == pytest.approx(trace.times)


def test_clipped():
    trace = make_trace([1.0, 2.0, 8.0])
    clipped = trace.clipped(5.0)
    assert clipped.times == pytest.approx([1.0, 2.0])
    assert clipped.duration_s == 5.0


def test_clipped_beyond_duration_keeps_window():
    trace = make_trace([1.0], duration=10.0)
    assert trace.clipped(20.0).duration_s == 10.0


def test_scaled_rate_speeds_up():
    trace = make_trace([2.0, 4.0], duration=10.0)
    fast = trace.scaled_rate(2.0)
    assert fast.times == pytest.approx([1.0, 2.0])
    assert fast.duration_s == 5.0
    assert fast.mean_rate == pytest.approx(2 * trace.mean_rate)


def test_rate_profile_counts_per_bin():
    trace = make_trace([0.5, 1.5, 1.6, 9.5], duration=10.0)
    centres, rates = trace.rate_profile(1.0)
    assert len(centres) == 10
    assert rates[0] == pytest.approx(1.0)
    assert rates[1] == pytest.approx(2.0)
    assert rates[9] == pytest.approx(1.0)


def test_burstiness_zero_for_empty():
    assert make_trace([]).burstiness() == 0.0


def test_merge_traces():
    a = make_trace([1.0, 5.0])
    b = make_trace([2.0], duration=20.0)
    merged = merge_traces([a, b])
    assert merged.times == pytest.approx([1.0, 2.0, 5.0])
    assert merged.duration_s == 20.0


def test_merge_empty_rejected():
    with pytest.raises(ValueError):
        merge_traces([])


@given(
    data=st.lists(st.floats(min_value=0.0, max_value=9.999), max_size=100),
    fraction=st.floats(min_value=0.0, max_value=3.0),
)
@settings(max_examples=200, deadline=None)
def test_shift_preserves_multiset_of_gaps_modulo_wrap(data, fraction):
    """Shifting is a rotation: item count and window are invariant, and
    every shifted time stays inside the window."""
    times = np.sort(np.asarray(data, dtype=float))
    trace = Trace(times, 10.0)
    shifted = trace.shifted(fraction)
    assert shifted.n_items == trace.n_items
    if shifted.n_items:
        assert shifted.times.min() >= 0.0
        assert shifted.times.max() < 10.0
    assert np.all(np.diff(shifted.times) >= 0)
