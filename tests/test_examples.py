"""Smoke tests: every example script runs to completion and prints its
headline output. Marked slow — each runs a few seconds of simulation."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.slow
def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "PBPL saves" in out
    assert "Mutex" in out


@pytest.mark.slow
def test_webserver_scenario_runs():
    out = run_example("webserver_scenario.py")
    assert "less power than" in out
    assert "p99" in out


@pytest.mark.slow
def test_runtime_monitoring_runs():
    out = run_example("runtime_monitoring.py")
    assert "pool invariant holds" in out
    assert "overflow wakeups" in out


@pytest.mark.slow
def test_network_router_runs():
    out = run_example("network_router.py")
    assert "mW per ms" in out


@pytest.mark.slow
def test_device_driver_runs():
    out = run_example("device_driver.py")
    assert "irq-per-event" in out
    assert "per-device mW" in out
    assert "20 ms budget" in out


@pytest.mark.slow
def test_resource_aware_tuning_runs():
    out = run_example("resource_aware_tuning.py")
    assert "datacenter" in out and "interactive" in out and "embedded" in out
    assert "cuts mean latency" in out


@pytest.mark.slow
def test_chaos_injection_runs():
    out = run_example("chaos_injection.py")
    assert "With every safeguard armed:" in out
    assert "balanced" in out and "LEAKED" not in out
    assert "recovered by the watchdog" in out
