"""Registry semantics: label keying, const labels, snapshot queries."""

import pytest

from repro.telemetry import MetricsRegistry


def test_same_name_and_labels_share_one_instrument():
    r = MetricsRegistry()
    a = r.counter("wakeups_total", core=0)
    b = r.counter("wakeups_total", core=0)
    c = r.counter("wakeups_total", core=1)
    assert a is b
    assert a is not c


def test_label_order_is_irrelevant():
    r = MetricsRegistry()
    a = r.counter("slots_fired_total", core=0, kind="slot")
    b = r.counter("slots_fired_total", kind="slot", core=0)
    assert a is b


def test_kind_conflict_rejected():
    r = MetricsRegistry()
    r.counter("wakeups_total")
    with pytest.raises(ValueError):
        r.gauge("wakeups_total")


def test_histogram_bucket_conflict_rejected():
    r = MetricsRegistry()
    r.histogram("batch_items", buckets=(1, 2))
    with pytest.raises(ValueError):
        r.histogram("batch_items", buckets=(1, 4))


def test_invalid_names_and_labels_rejected():
    r = MetricsRegistry()
    with pytest.raises(ValueError):
        r.counter("Bad-Name")
    with pytest.raises(ValueError):
        r.counter("wakeups_total", **{"Bad-Label": 1})


def test_const_labels_merge_into_every_series():
    r = MetricsRegistry(const_labels={"impl": "PBPL"})
    r.counter("wakeups_total", core=0).inc(2)
    snap = r.snapshot()
    assert snap.value("wakeups_total", impl="PBPL", core=0) == 2


def test_snapshot_is_decoupled_from_live_registry():
    r = MetricsRegistry()
    c = r.counter("overflows_total")
    c.inc()
    snap = r.snapshot()
    c.inc(10)
    assert snap.value("overflows_total") == 1
    assert r.snapshot().value("overflows_total") == 11


def test_total_sums_over_label_subsets():
    r = MetricsRegistry()
    r.counter("core_wakeups_total", core=0).inc(3)
    r.counter("core_wakeups_total", core=1).inc(4)
    snap = r.snapshot()
    assert snap.total("core_wakeups_total") == 7
    assert snap.total("core_wakeups_total", core=1) == 4
    with pytest.raises(KeyError):
        snap.total("core_wakeups_total", core=9)


def test_total_rejects_histograms():
    r = MetricsRegistry()
    r.histogram("batch_items", buckets=(1,)).observe(1)
    with pytest.raises(ValueError):
        r.snapshot().total("batch_items")


def test_delta_counters_histograms_subtract_gauges_sample():
    r = MetricsRegistry()
    c = r.counter("items_consumed_total")
    g = r.gauge("buffer_capacity")
    h = r.histogram("batch_items", buckets=(1, 4))
    c.inc(5)
    g.set(16)
    h.observe(2)
    first = r.snapshot()
    c.inc(3)
    g.set(32)
    h.observe(8)
    second = r.snapshot()
    d = second.delta(first)
    assert d.value("items_consumed_total") == 3
    assert d.value("buffer_capacity") == 32  # gauges keep the sampled value
    hist = d.value("batch_items")
    assert hist.count == 1 and hist.sum == 8.0
