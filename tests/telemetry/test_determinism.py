"""OpenMetrics artifacts are byte-identical however the work is laid
out: same text across repeat runs in-process and across worker counts
in the chaos matrix (serialisation order must not leak into exports)."""

import pytest

from repro.faults import SMOKE_SCENARIOS, run_chaos
from repro.telemetry import MetricsRegistry, snapshot_to_jsonl, to_openmetrics
from repro.trace import record_run

from tests.telemetry.conftest import SPEC


def _snapshot_text():
    registry = MetricsRegistry(
        const_labels={"impl": SPEC["impl"], "scenario": SPEC["scenario"]}
    )
    record_run(
        SPEC["impl"],
        SPEC["scenario"],
        duration_s=SPEC["duration_s"],
        n_consumers=SPEC["n_consumers"],
        seed=SPEC["seed"],
        metrics=registry,
    )
    snap = registry.snapshot()
    return to_openmetrics(snap), snapshot_to_jsonl(snap)


def test_exports_are_byte_identical_across_runs():
    (prom_a, jsonl_a) = _snapshot_text()
    (prom_b, jsonl_b) = _snapshot_text()
    assert prom_a == prom_b
    assert jsonl_a == jsonl_b


@pytest.mark.slow
def test_chaos_artifacts_byte_identical_across_jobs():
    """The per-scenario .prom artifacts come back identical whether the
    matrix ran serially or across worker processes."""
    kwargs = dict(
        seed=2014,
        duration_s=0.3,
        n_consumers=3,
        collect_metrics=True,
    )
    serial = run_chaos(SMOKE_SCENARIOS, jobs=1, **kwargs)
    parallel = run_chaos(SMOKE_SCENARIOS, jobs=2, **kwargs)
    assert set(serial.metrics_artifacts) == {s.name for s in SMOKE_SCENARIOS}
    assert serial.metrics_artifacts == parallel.metrics_artifacts
    for text in serial.metrics_artifacts.values():
        assert text.endswith("# EOF\n")
