"""Shared fixtures: one instrumented run reused across telemetry tests."""

import pytest

from repro.telemetry import MetricsRegistry
from repro.trace import record_run

SPEC = dict(impl="PBPL", scenario="webserver", duration_s=0.3, n_consumers=3, seed=2014)


@pytest.fixture(scope="session")
def metered_run():
    """A short PBPL webserver run with a live registry attached
    (expensive — recorded once per session, read-only everywhere)."""
    registry = MetricsRegistry(
        const_labels={"impl": SPEC["impl"], "scenario": SPEC["scenario"]}
    )
    run = record_run(
        SPEC["impl"],
        SPEC["scenario"],
        duration_s=SPEC["duration_s"],
        n_consumers=SPEC["n_consumers"],
        seed=SPEC["seed"],
        metrics=registry,
    )
    return run


@pytest.fixture(scope="session")
def metered_snapshot(metered_run):
    return metered_run.metrics.snapshot()
