"""Tumbling windows in virtual time, plus the histogram-merge
associativity property that makes window deltas recombine exactly."""

import pytest

from repro.sim import Environment
from repro.telemetry import Histogram, MetricsRegistry, TumblingWindows
from repro.trace import clip_span

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st


def _driven_run(window_s, until_s, emissions):
    """Drive a registry under tumbling windows with timed emissions:
    ``emissions`` is a list of ``(t, amount)`` counter increments."""
    env = Environment()
    registry = MetricsRegistry()
    counter = registry.counter("items_produced_total")

    def emit(t, amount):
        yield env.timeout(t)
        counter.inc(amount)

    for t, amount in emissions:
        env.process(emit(t, amount))
    windows = TumblingWindows(env, registry, window_s).start()
    env.run(until=until_s)
    windows.finalize(env.now)
    return registry, windows


def test_windows_cover_the_run_without_gaps():
    _, windows = _driven_run(0.1, 0.35, [(0.05, 1), (0.15, 2), (0.32, 4)])
    frames = windows.frames
    assert [f.index for f in frames] == [0, 1, 2, 3]
    assert frames[0].start_s == 0.0
    assert frames[-1].end_s == 0.35
    # Consecutive windows tile the run: each starts where the last ended.
    for prev, cur in zip(frames, frames[1:]):
        assert cur.start_s == prev.end_s
    for f in frames[:-1]:
        assert f.end_s - f.start_s == pytest.approx(0.1)


def test_window_deltas_sum_to_cumulative_total():
    registry, windows = _driven_run(
        0.1, 0.35, [(0.05, 1), (0.15, 2), (0.17, 3), (0.32, 4)]
    )
    per_window = [
        f.snapshot.value("items_produced_total") for f in windows.frames
    ]
    assert per_window == [1, 5, 0, 4]
    assert sum(per_window) == registry.snapshot().value("items_produced_total")


def test_flushes_land_exactly_on_window_edges():
    _, windows = _driven_run(0.25, 1.0, [(0.999, 1)])
    assert [f.end_s for f in windows.frames] == [0.25, 0.5, 0.75, 1.0]


def test_finalize_is_idempotent():
    env = Environment()
    registry = MetricsRegistry()
    windows = TumblingWindows(env, registry, 0.1).start()
    env.run(until=0.25)
    windows.finalize(env.now)
    n = len(windows.frames)
    windows.finalize(env.now)
    assert len(windows.frames) == n


def test_run_ending_on_a_window_edge_adds_no_empty_tail():
    # 0.25 is exactly representable, so the edges are exact; whether the
    # final flush fires inside env.run or via finalize, the frame count
    # and the last edge come out the same.
    _, windows = _driven_run(0.25, 0.5, [(0.1, 1)])
    assert len(windows.frames) == 2
    assert windows.frames[-1].end_s == 0.5


def test_window_uses_shared_interval_clipping():
    # The trailing partial window is exactly what clip_span says it is.
    assert clip_span(0.3, 0.4, 0.0, 0.35) == (0.3, 0.35)
    _, windows = _driven_run(0.2, 0.3, [(0.25, 1)])
    tail = windows.frames[-1]
    assert (tail.start_s, tail.end_s) == clip_span(0.2, 0.4, 0.0, 0.3)


_bounds = st.lists(
    st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=6,
    unique=True,
).map(lambda xs: tuple(sorted(xs)))


@settings(max_examples=60, deadline=None)
@given(
    bounds=_bounds,
    chunks=st.lists(
        st.lists(
            st.floats(min_value=0.0, max_value=2e6, allow_nan=False),
            max_size=8,
        ),
        min_size=1,
        max_size=5,
    ),
    split=st.integers(min_value=0, max_value=5),
)
def test_histogram_merge_is_associative_across_flushes(bounds, chunks, split):
    """Merging per-window histogram deltas in any grouping reproduces
    the all-at-once histogram — the invariant tumbling windows rely on
    when frames are recombined downstream."""
    split = min(split, len(chunks))

    def fold(groups):
        out = Histogram(bounds)
        for group in groups:
            h = Histogram(bounds)
            for v in group:
                h.observe(v)
            out = out.merge(h)
        return out

    everything = fold([[v for group in chunks for v in group]])
    per_chunk = fold(chunks)
    two_phase = fold([
        [v for group in chunks[:split] for v in group],
        [v for group in chunks[split:] for v in group],
    ])
    assert per_chunk.counts == everything.counts == two_phase.counts
    assert per_chunk.count == everything.count == two_phase.count
    assert per_chunk.sum == pytest.approx(everything.sum)
