"""Instrument semantics: counters, gauges, histograms, and the null
variants the disabled registry hands out."""

import pytest

from repro.telemetry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


def test_counter_accumulates():
    c = Counter()
    c.inc()
    c.inc(3)
    assert c.value == 4


def test_counter_rejects_negative():
    c = Counter()
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_holds_last_value():
    g = Gauge()
    g.set(7)
    g.set(2.5)
    assert g.value == 2.5


def test_histogram_buckets_cumulative_fill():
    h = Histogram((1, 2, 4))
    for v in (0.5, 1.5, 3, 100):
        h.observe(v)
    # Per-bucket (non-cumulative) fill: <=1, <=2, <=4, +Inf.
    assert h.counts == [1, 1, 1, 1]
    assert h.count == 4
    assert h.sum == 105.0


def test_histogram_merge_and_delta_are_inverse():
    a = Histogram((1, 10))
    b = Histogram((1, 10))
    for v in (0.1, 5):
        a.observe(v)
    b.observe(20)
    merged = a.merge(b)
    assert merged.count == 3
    back = merged.delta(a)
    assert back == b
    assert back is not b  # a fresh histogram, not an alias


def test_histogram_merge_requires_same_bounds():
    with pytest.raises(ValueError):
        Histogram((1,)).merge(Histogram((2,)))


def test_null_registry_is_falsy_and_inert():
    assert not NULL_REGISTRY
    assert not NullRegistry()
    c = NULL_REGISTRY.counter("wakeups_total", core=0)
    g = NULL_REGISTRY.gauge("buffer_capacity")
    h = NULL_REGISTRY.histogram("batch_items", buckets=(1, 2))
    c.inc(5)
    g.set(3)
    h.observe(1)
    assert NULL_REGISTRY.snapshot().families == []


def test_null_registry_shares_instruments():
    # The null instruments are singletons: handing them out allocates
    # nothing per call site.
    a = NULL_REGISTRY.counter("wakeups_total")
    b = NULL_REGISTRY.counter("overflows_total", consumer="c1")
    assert a is b


def test_active_registry_is_truthy():
    assert MetricsRegistry()
