"""The `repro metrics` command group, end to end and in-process."""

import pytest

from repro.cli import main
from repro.telemetry import parse_openmetrics

FAST = ["--duration", "0.2", "--consumers", "2", "--seed", "7"]


def test_snapshot_writes_openmetrics_and_reconciles(capsys, tmp_path):
    out = tmp_path / "m.prom"
    assert main(["metrics", "snapshot", *FAST, "-o", str(out)]) == 0
    text = out.read_text(encoding="utf-8")
    assert text.endswith("# EOF\n")
    samples = parse_openmetrics(text)
    assert any(k.startswith("repro_wakeups_total") for k in samples)
    console = capsys.readouterr().out
    assert "OK" in console and "FAIL" not in console


def test_snapshot_to_stdout(capsys):
    assert main(["metrics", "snapshot", *FAST, "-o", "-"]) == 0
    captured = capsys.readouterr()
    assert captured.out.endswith("# EOF\n")
    assert "OK" in captured.err  # reconciliation table goes to stderr


def test_snapshot_jsonl(tmp_path):
    out = tmp_path / "m.jsonl"
    assert main(["metrics", "snapshot", *FAST, "--jsonl", "-o", str(out)]) == 0
    first = out.read_text(encoding="utf-8").splitlines()[0]
    assert first.startswith("{")


def test_snapshot_baseline_impl_reconciles_energy(capsys, tmp_path):
    out = tmp_path / "m.prom"
    code = main(
        ["metrics", "snapshot", "--impl", "BP", *FAST, "-o", str(out)]
    )
    assert code == 0
    assert "energy_joules_total" in capsys.readouterr().out


def test_watch_renders_window_tables(capsys):
    code = main(["metrics", "watch", *FAST, "--window", "0.1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "window 0" in out and "window 1" in out
    assert "items_consumed_total" in out


def test_watch_rejects_bad_window(capsys):
    assert main(["metrics", "watch", *FAST, "--window", "0"]) == 2


def test_diff_clean_and_drifted(capsys, tmp_path):
    a = tmp_path / "a.prom"
    b = tmp_path / "b.prom"
    a.write_text("m_total 1\n# EOF\n", encoding="utf-8")
    b.write_text("m_total 1\n# EOF\n", encoding="utf-8")
    assert main(["metrics", "diff", str(a), str(b)]) == 0
    b.write_text("m_total 5\n# EOF\n", encoding="utf-8")
    capsys.readouterr()
    assert main(["metrics", "diff", str(a), str(b)]) == 1
    assert "m_total" in capsys.readouterr().out
    # Thresholds absorb the drift.
    assert main(["metrics", "diff", str(a), str(b), "--threshold-abs", "10"]) == 0


def test_diff_missing_file_exits_two(tmp_path):
    a = tmp_path / "a.prom"
    a.write_text("# EOF\n", encoding="utf-8")
    assert main(["metrics", "diff", str(a), str(tmp_path / "nope.prom")]) == 2


def test_profile_prints_hotspot_table(capsys):
    assert main(["metrics", "profile", *FAST, "--top", "4"]) == 0
    out = capsys.readouterr().out
    assert "kernel self-profile" in out
    assert "dispatches" in out


def test_bless_then_diff_round_trip(capsys, tmp_path):
    assert main(["metrics", "bless", "--out-dir", str(tmp_path)]) == 0
    golden = tmp_path / "pbpl_smoke.metrics.prom"
    assert golden.exists()
    capsys.readouterr()
    # The default snapshot spec is the golden spec: a fresh snapshot
    # must diff clean against a fresh bless.
    snap = tmp_path / "fresh.prom"
    assert main(["metrics", "snapshot", "-o", str(snap)]) == 0
    assert main(["metrics", "diff", str(golden), str(snap)]) == 0
