"""Kernel self-profiler: dispatch counts are deterministic, self-times
are measured, the hot-spot table renders, and profiling does not change
what the simulation computes."""

from repro.sim import Environment
from repro.telemetry import KernelProfiler
from repro.trace import record_run

from tests.telemetry.conftest import SPEC


def _toy_env():
    env = Environment()
    hits = {"fast": 0, "slow": 0}

    def fast():
        while True:
            yield env.timeout(0.01)
            hits["fast"] += 1

    def slow():
        while True:
            yield env.timeout(0.05)
            hits["slow"] += 1

    env.process(fast(), name="fast")
    env.process(slow(), name="slow")
    return env, hits


def test_profiler_counts_every_dispatch():
    env, hits = _toy_env()
    profiler = KernelProfiler()
    profiler.run(env, until=1.0)
    counts = profiler.dispatch_counts()
    assert hits["fast"] > hits["slow"] > 0
    # Every timeout resume for a process is one Timeout dispatch to it.
    assert counts[("Timeout", "Process:fast")] == hits["fast"]
    assert counts[("Timeout", "Process:slow")] == hits["slow"]
    report = profiler.report()
    assert report.events_processed == env.events_processed > 0


def test_profiler_matches_unprofiled_run():
    env_a, hits_a = _toy_env()
    KernelProfiler().run(env_a, until=1.0)
    env_b, hits_b = _toy_env()
    env_b.run(until=1.0)
    assert hits_a == hits_b
    assert env_a.now == env_b.now


def test_dispatch_counts_are_deterministic_across_runs():
    counts = []
    for _ in range(2):
        profiler = KernelProfiler()
        run = record_run(
            SPEC["impl"],
            SPEC["scenario"],
            duration_s=0.2,
            n_consumers=SPEC["n_consumers"],
            seed=SPEC["seed"],
            profiler=profiler,
        )
        counts.append(profiler.dispatch_counts())
        assert run.stats.produced > 0
    assert counts[0] == counts[1]


def test_report_renders_top_n_table():
    profiler = KernelProfiler()
    record_run(
        SPEC["impl"],
        SPEC["scenario"],
        duration_s=0.2,
        n_consumers=SPEC["n_consumers"],
        seed=SPEC["seed"],
        profiler=profiler,
    )
    report = profiler.report()
    assert report.events_processed > 0
    assert report.wall_s > 0
    text = report.render(top=3)
    lines = text.splitlines()
    assert "dispatches" in text and "self ms" in text
    assert "kernel self-profile" in text
    # Top-3 plus a rollup row for everything below the fold.
    assert any("more handlers" in line for line in lines)
    rows = report.top(3)
    assert len(rows) == 3
    # Sorted by self time, descending.
    assert rows[0].self_s >= rows[1].self_s >= rows[2].self_s
