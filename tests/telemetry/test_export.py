"""Exporters: OpenMetrics text, JSONL, parse round-trip, drift diffs."""

import json

import pytest

from repro.telemetry import (
    MetricsParseError,
    MetricsRegistry,
    diff_openmetrics,
    parse_openmetrics,
    render_table,
    snapshot_to_jsonl,
    to_openmetrics,
)


def _registry():
    r = MetricsRegistry(const_labels={"impl": "PBPL"})
    r.counter("wakeups_total", help="Wakeups.", kind="slot").inc(3)
    r.gauge("buffer_capacity", help="Slots.", consumer="c0").set(16)
    h = r.histogram("batch_items", buckets=(1, 4), help="Batch sizes.")
    for v in (1, 2, 9):
        h.observe(v)
    return r


def test_openmetrics_shape():
    text = to_openmetrics(_registry().snapshot())
    lines = text.splitlines()
    assert lines[-1] == "# EOF"
    assert text.endswith("# EOF\n")
    assert "# HELP repro_wakeups_total Wakeups." in lines
    assert "# TYPE repro_wakeups_total counter" in lines
    assert 'repro_wakeups_total{impl="PBPL",kind="slot"} 3' in lines
    assert 'repro_buffer_capacity{consumer="c0",impl="PBPL"} 16' in lines
    # Histogram buckets are cumulative with le labels plus sum/count.
    assert 'repro_batch_items_bucket{impl="PBPL",le="1.0"} 1' in lines
    assert 'repro_batch_items_bucket{impl="PBPL",le="4.0"} 2' in lines
    assert 'repro_batch_items_bucket{impl="PBPL",le="+Inf"} 3' in lines
    assert 'repro_batch_items_sum{impl="PBPL"} 12.0' in lines
    assert 'repro_batch_items_count{impl="PBPL"} 3' in lines


def test_openmetrics_parse_round_trip():
    text = to_openmetrics(_registry().snapshot())
    samples = parse_openmetrics(text)
    assert samples['repro_wakeups_total{impl="PBPL",kind="slot"}'] == 3.0
    assert samples['repro_batch_items_bucket{impl="PBPL",le="+Inf"}'] == 3.0


def test_parse_rejects_garbage():
    with pytest.raises(MetricsParseError):
        parse_openmetrics("repro_x this is not a number\n# EOF\n")


def test_diff_identical_is_clean():
    text = to_openmetrics(_registry().snapshot())
    diff = diff_openmetrics(text, text)
    assert not diff.drifted
    assert "identical" in diff.render()


def test_diff_reports_drift_and_missing_series():
    a = _registry()
    b = _registry()
    b.counter("wakeups_total", kind="slot").inc(2)
    b.counter("overflows_total").inc()
    diff = diff_openmetrics(
        to_openmetrics(a.snapshot()), to_openmetrics(b.snapshot())
    )
    assert diff.drifted
    rendered = diff.render()
    assert "wakeups_total" in rendered
    assert "overflows_total" in rendered
    payload = diff.to_dict()
    assert payload["drifted"] is True


def test_diff_thresholds_absorb_small_drift():
    a = _registry()
    b = _registry()
    b.counter("wakeups_total", kind="slot").inc(1)  # 3 -> 4
    a_text = to_openmetrics(a.snapshot())
    b_text = to_openmetrics(b.snapshot())
    assert diff_openmetrics(a_text, b_text).drifted
    assert not diff_openmetrics(a_text, b_text, abs_tol=1.0).drifted
    assert not diff_openmetrics(a_text, b_text, rel_tol=0.5).drifted


def test_jsonl_is_valid_and_sorted():
    text = snapshot_to_jsonl(_registry().snapshot())
    rows = [json.loads(line) for line in text.splitlines()]
    assert [r["name"] for r in rows] == sorted(r["name"] for r in rows)
    hist = next(r for r in rows if r["name"] == "batch_items")
    assert hist["count"] == 3
    assert hist["counts"] == [1, 1, 1]


def test_render_table_lists_series(metered_snapshot):
    table = render_table(metered_snapshot, title="snapshot")
    assert "snapshot" in table
    assert "wakeups_total" in table
    assert "energy_joules_total" in table


def test_exported_floats_are_repr_exact():
    r = MetricsRegistry()
    r.counter("energy_joules_total").inc(0.1 + 0.2)
    text = to_openmetrics(r.snapshot())
    assert f"repro_energy_joules_total {repr(0.1 + 0.2)}" in text
