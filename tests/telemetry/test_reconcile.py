"""The acceptance gate: instrument totals must agree with the run's
independent ground truth (RunMetrics and the power ledger), and an
attached registry must not perturb the simulation at all."""

import pytest

from repro.harness.runner import CONSUMER_CORE
from repro.telemetry import (
    reconcile_core_wakeups,
    reconcile_counters,
    reconcile_energy,
    render_checks,
)
from repro.trace import record_run

from tests.telemetry.conftest import SPEC


def test_counters_match_run_metrics(metered_run, metered_snapshot):
    checks = reconcile_counters(metered_snapshot, metered_run.stats)
    assert len(checks) == 6
    assert all(c.ok for c in checks), render_checks(checks)


def test_joules_match_power_ledger(metered_run, metered_snapshot):
    checks = reconcile_energy(metered_snapshot, metered_run.ledger_total_j)
    assert all(c.ok for c in checks), render_checks(checks)
    (check,) = checks
    assert abs(check.metric - metered_run.ledger_total_j) < 1e-9


def test_core_wakeups_match_machine(metered_run, metered_snapshot):
    checks = reconcile_core_wakeups(
        metered_snapshot, CONSUMER_CORE, metered_run.consumer_core_wakeups
    )
    assert all(c.ok for c in checks), render_checks(checks)


def test_reconcile_flags_disagreement(metered_run, metered_snapshot):
    checks = reconcile_energy(
        metered_snapshot, metered_run.ledger_total_j + 1.0
    )
    assert not all(c.ok for c in checks)
    assert "FAIL" in render_checks(checks)


def test_registry_does_not_perturb_the_run(metered_run):
    """Zero-cost invariant: the same run without any registry produces
    identical stats and an identical energy ledger — instruments only
    observe, they never reschedule."""
    bare = record_run(
        SPEC["impl"],
        SPEC["scenario"],
        duration_s=SPEC["duration_s"],
        n_consumers=SPEC["n_consumers"],
        seed=SPEC["seed"],
    )
    for attr in (
        "produced",
        "consumed",
        "scheduled_wakeups",
        "overflow_wakeups",
        "overflows",
        "items_shed",
    ):
        assert getattr(bare.stats, attr) == getattr(metered_run.stats, attr)
    assert bare.ledger_total_j == metered_run.ledger_total_j
    assert bare.consumer_core_wakeups == metered_run.consumer_core_wakeups


def test_trace_bytes_unchanged_with_registry(metered_run):
    """The golden-trace gate stays empty: attaching a registry (without
    windows) leaves the recorded event stream byte-identical."""
    from repro.trace.stream import event_to_dict

    bare = record_run(
        SPEC["impl"],
        SPEC["scenario"],
        duration_s=SPEC["duration_s"],
        n_consumers=SPEC["n_consumers"],
        seed=SPEC["seed"],
    )
    a = [event_to_dict(e) for e in bare.tracer.events]
    b = [event_to_dict(e) for e in metered_run.tracer.events]
    assert a == b
