"""Unit tests for Semaphore, Mutex and ConditionVariable."""

import pytest

from repro.sim import ConditionVariable, Environment, Mutex, Semaphore, SimulationError


# -- Semaphore ---------------------------------------------------------------


def test_semaphore_initial_value():
    env = Environment()
    assert Semaphore(env, 3).value == 3


def test_semaphore_negative_value_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        Semaphore(env, -1)


def test_semaphore_acquire_available_is_immediate():
    env = Environment()
    sem = Semaphore(env, 1)
    log = []

    def proc(env):
        yield sem.acquire()
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [0.0]
    assert sem.value == 0


def test_semaphore_acquire_blocks_until_release():
    env = Environment()
    sem = Semaphore(env, 0)
    log = []

    def taker(env):
        yield sem.acquire()
        log.append(env.now)

    def giver(env):
        yield env.timeout(5.0)
        sem.release()

    env.process(taker(env))
    env.process(giver(env))
    env.run()
    assert log == [5.0]


def test_semaphore_fifo_ordering():
    env = Environment()
    sem = Semaphore(env, 0)
    order = []

    def taker(env, tag):
        yield sem.acquire()
        order.append(tag)

    for tag in "abc":
        env.process(taker(env, tag))

    def giver(env):
        yield env.timeout(1.0)
        sem.release(3)

    env.process(giver(env))
    env.run()
    assert order == ["a", "b", "c"]


def test_semaphore_try_acquire():
    env = Environment()
    sem = Semaphore(env, 1)
    assert sem.try_acquire()
    assert not sem.try_acquire()
    sem.release()
    assert sem.try_acquire()


def test_semaphore_capacity_guards_double_release():
    env = Environment()
    sem = Semaphore(env, 1, capacity=1)
    with pytest.raises(SimulationError):
        sem.release()


def test_semaphore_release_count_validation():
    env = Environment()
    sem = Semaphore(env, 0)
    with pytest.raises(SimulationError):
        sem.release(0)


def test_semaphore_cancel_pending_acquire():
    env = Environment()
    sem = Semaphore(env, 0)
    req = sem.acquire()
    assert sem.waiting == 1
    assert sem.cancel(req)
    assert sem.waiting == 0
    assert not sem.cancel(req)  # already gone
    sem.release()
    assert sem.value == 1  # the unit was not stolen by the cancelled request


def test_semaphore_waiting_counter():
    env = Environment()
    sem = Semaphore(env, 0)

    def taker(env):
        yield sem.acquire()

    env.process(taker(env))
    env.process(taker(env))
    env.run()  # both now blocked; run drains the (empty) schedule
    assert sem.waiting == 2


# -- Mutex --------------------------------------------------------------------


def test_mutex_basic_lock_unlock():
    env = Environment()
    mtx = Mutex(env)

    def proc(env):
        yield mtx.acquire()
        assert mtx.locked
        mtx.release()
        assert not mtx.locked

    p = env.process(proc(env))
    env.run(until=p)


def test_mutex_mutual_exclusion_and_fifo_handoff():
    env = Environment()
    mtx = Mutex(env)
    log = []

    def proc(env, tag, hold):
        yield mtx.acquire()
        log.append(("in", tag, env.now))
        yield env.timeout(hold)
        log.append(("out", tag, env.now))
        mtx.release()

    env.process(proc(env, "a", 2.0))
    env.process(proc(env, "b", 1.0))
    env.run()
    assert log == [
        ("in", "a", 0.0),
        ("out", "a", 2.0),
        ("in", "b", 2.0),
        ("out", "b", 3.0),
    ]


def test_mutex_release_unlocked_raises():
    env = Environment()
    mtx = Mutex(env)
    with pytest.raises(SimulationError):
        mtx.release()


def test_mutex_release_by_non_owner_raises():
    env = Environment()
    mtx = Mutex(env)

    def owner(env):
        yield mtx.acquire()
        yield env.timeout(10.0)
        mtx.release()

    def thief(env):
        yield env.timeout(1.0)
        mtx.release()

    env.process(owner(env))
    thief_p = env.process(thief(env))
    with pytest.raises(SimulationError, match="released by"):
        env.run(until=thief_p)


def test_mutex_is_not_recursive():
    env = Environment()
    mtx = Mutex(env)

    def proc(env):
        yield mtx.acquire()
        yield mtx.acquire()

    p = env.process(proc(env))
    with pytest.raises(SimulationError, match="not recursive"):
        env.run(until=p)


# -- ConditionVariable ----------------------------------------------------------


def test_condvar_wait_notify_roundtrip():
    env = Environment()
    mtx = Mutex(env)
    cv = ConditionVariable(env, mtx)
    shared = {"items": 0}
    log = []

    def consumer(env):
        yield mtx.acquire()
        while shared["items"] == 0:
            yield from cv.wait()
        log.append(("consumed", env.now, shared["items"]))
        shared["items"] -= 1
        mtx.release()

    def producer(env):
        yield env.timeout(3.0)
        yield mtx.acquire()
        shared["items"] += 1
        cv.notify()
        mtx.release()

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert log == [("consumed", 3.0, 1)]


def test_condvar_wait_requires_mutex_held():
    env = Environment()
    mtx = Mutex(env)
    cv = ConditionVariable(env, mtx)

    def proc(env):
        yield from cv.wait()

    p = env.process(proc(env))
    with pytest.raises(SimulationError, match="requires holding"):
        env.run(until=p)


def test_condvar_notify_returns_woken_count():
    env = Environment()
    mtx = Mutex(env)
    cv = ConditionVariable(env, mtx)

    def waiter(env):
        yield mtx.acquire()
        yield from cv.wait()
        mtx.release()

    env.process(waiter(env))
    env.process(waiter(env))

    def notifier(env):
        yield env.timeout(1.0)
        assert cv.notify_all() == 2

    env.process(notifier(env))
    env.run()
    assert cv.waiting == 0


def test_condvar_notify_with_no_waiters_is_noop():
    env = Environment()
    mtx = Mutex(env)
    cv = ConditionVariable(env, mtx)
    assert cv.notify() == 0
    assert cv.notify_all() == 0


def test_condvar_wait_reacquires_mutex_before_returning():
    env = Environment()
    mtx = Mutex(env)
    cv = ConditionVariable(env, mtx)
    checks = []

    def waiter(env):
        yield mtx.acquire()
        yield from cv.wait()
        checks.append(mtx.locked and mtx.owner is env.active_process)
        mtx.release()

    def notifier(env):
        yield env.timeout(1.0)
        yield mtx.acquire()
        cv.notify()
        mtx.release()

    env.process(waiter(env))
    env.process(notifier(env))
    env.run()
    assert checks == [True]
