"""Property-based tests on the DES kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Semaphore


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=40))
@settings(max_examples=200, deadline=None)
def test_events_always_processed_in_time_order(delays):
    env = Environment()
    seen = []

    def proc(env, d):
        yield env.timeout(d)
        seen.append(env.now)

    for d in delays:
        env.process(proc(env, d))
    env.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)
    assert env.now == max(delays)


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30
    )
)
@settings(max_examples=100, deadline=None)
def test_nested_timeouts_accumulate_exactly(delays):
    env = Environment()

    def proc(env):
        for d in delays:
            yield env.timeout(d)
        return env.now

    p = env.process(proc(env))
    total = env.run(until=p)
    # Sequential float additions from 0 — identical arithmetic as the kernel.
    expected = 0.0
    for d in delays:
        expected += d
    assert total == expected


@given(
    permits=st.integers(min_value=0, max_value=10),
    takers=st.integers(min_value=0, max_value=20),
)
@settings(max_examples=200, deadline=None)
def test_semaphore_conservation(permits, takers):
    """Units are conserved: grants + remaining value == initial + releases."""
    env = Environment()
    sem = Semaphore(env, permits)
    granted = []

    def taker(env, i):
        yield sem.acquire()
        granted.append(i)

    for i in range(takers):
        env.process(taker(env, i))
    env.run()

    immediate = min(permits, takers)
    assert len(granted) == immediate
    assert sem.value == permits - immediate
    assert sem.waiting == takers - immediate

    # Release enough for everyone still waiting; all must be granted FIFO.
    if sem.waiting:
        blocked = sem.waiting
        sem.release(blocked)
        env.run()
        assert len(granted) == takers
        assert granted == sorted(granted)


@given(data=st.data())
@settings(max_examples=100, deadline=None)
def test_run_until_number_never_overshoots(data):
    delays = data.draw(
        st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=1, max_size=20)
    )
    horizon = data.draw(st.floats(min_value=0.0, max_value=100.0))
    env = Environment()
    stamps = []

    def proc(env, d):
        yield env.timeout(d)
        stamps.append(env.now)

    for d in delays:
        env.process(proc(env, d))
    env.run(until=horizon)
    assert env.now == horizon
    assert all(t < horizon for t in stamps)
