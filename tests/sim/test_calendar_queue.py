"""The calendar event queue vs a reference heap: order equivalence.

The queue rewrite (DESIGN.md §13) is only allowed to change *throughput*
— dispatch order must remain the total order on ``(when, priority, eid)``
that the old binary heap produced, for any stream of schedulings,
including same-timestamp bursts, URGENT/NORMAL ties and events scheduled
*during* a same-bucket drain. These tests pin that equivalence against
an executable heap model, and cover the width knobs that must never
change results.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._compiled import PURE, kernel_backend
from repro.sim import Environment
from repro.sim.errors import SimulationError
from repro.sim.events import NORMAL, URGENT

#: Delay grid dense in collisions: exact ties, sub-bucket spacings,
#: bucket-boundary values (default width 1e-3), and far-apart outliers.
TIE_PRONE_DELAYS = [
    0.0, 0.0, 1e-4, 1e-4, 2.5e-4, 9.99e-4, 1e-3, 1e-3, 1.0001e-3,
    5e-3, 0.0123, 0.0123, 1.0, 7.25, 1e3,
]

delays_st = st.one_of(
    st.sampled_from(TIE_PRONE_DELAYS),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)
priority_st = st.sampled_from([URGENT, NORMAL])


def _recorded_event(env, order, tag):
    ev = env.event()
    ev._ok = True
    ev.callbacks.append(lambda _e: order.append(tag))
    return ev


@given(
    entries=st.lists(
        st.tuples(delays_st, priority_st), min_size=1, max_size=80
    ),
    width=st.sampled_from([1e-4, 1e-3, 1e-2, 0.6, 1e6]),
)
@settings(max_examples=200, deadline=None)
def test_dispatch_order_matches_heap_model(entries, width):
    env = Environment(bucket_width_s=width)
    order = []
    heap = []
    for eid, (delay, priority) in enumerate(entries):
        env.schedule(_recorded_event(env, order, eid), delay, priority)
        heapq.heappush(heap, (delay, priority, eid))
    env.run()
    expected = []
    while heap:
        expected.append(heapq.heappop(heap)[2])
    assert order == expected


@given(
    entries=st.lists(
        st.tuples(
            delays_st,
            priority_st,
            # Children scheduled from inside this event's callback:
            # (extra delay, priority); 0.0 extra = the live-drain case.
            st.lists(
                st.tuples(
                    st.sampled_from([0.0, 0.0, 1e-4, 1e-3, 0.5]),
                    priority_st,
                ),
                max_size=3,
            ),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=200, deadline=None)
def test_mid_dispatch_scheduling_matches_heap_model(entries, ):
    # Real run: each initial event's callback schedules its children,
    # so URGENT children at the *current* timestamp must slot into the
    # still-pending suffix of the active bucket.
    env = Environment()
    order = []

    def make_event(tag, children):
        ev = env.event()
        ev._ok = True

        def fire(_e):
            order.append(tag)
            for j, (extra, prio) in enumerate(children):
                env.schedule(make_event((tag, j), []), extra, prio)

        ev.callbacks.append(fire)
        return ev

    for i, (delay, priority, children) in enumerate(entries):
        env.schedule(make_event(i, children), delay, priority)
    env.run()

    # Heap model: same eid assignment discipline (one eid per schedule
    # call, children numbered at dispatch time).
    heap = []
    eid = 0
    meta = {}
    for i, (delay, priority, children) in enumerate(entries):
        heapq.heappush(heap, (delay, priority, eid))
        meta[eid] = (i, children)
        eid += 1
    expected = []
    while heap:
        when, _prio, e = heapq.heappop(heap)
        tag, children = meta[e]
        expected.append(tag)
        for j, (extra, prio) in enumerate(children):
            heapq.heappush(heap, (when + extra, prio, eid))
            meta[eid] = ((tag, j), [])
            eid += 1
    assert order == expected


def test_same_timestamp_burst_dispatches_in_schedule_order():
    env = Environment()
    order = []
    for i in range(1000):
        env.schedule(_recorded_event(env, order, i), 5e-3)
    env.run()
    assert order == list(range(1000))


def test_urgent_beats_normal_within_a_batch():
    env = Environment()
    order = []
    env.schedule(_recorded_event(env, order, "n0"), 1e-3, NORMAL)
    env.schedule(_recorded_event(env, order, "u0"), 1e-3, URGENT)
    env.schedule(_recorded_event(env, order, "n1"), 1e-3, NORMAL)
    env.schedule(_recorded_event(env, order, "u1"), 1e-3, URGENT)
    env.run()
    assert order == ["u0", "u1", "n0", "n1"]


def test_infinite_timestamps_sort_after_everything():
    # Same semantics as the old heap: run(until=None) dispatches strictly
    # before inf, so an inf-scheduled wakeup parks in the queue forever.
    env = Environment()
    order = []
    env.schedule(_recorded_event(env, order, "inf"), float("inf"))
    env.schedule(_recorded_event(env, order, "soon"), 1e-3)
    env.schedule(_recorded_event(env, order, "later"), 2.0)
    assert env.peek() == 1e-3
    env.run()
    assert order == ["soon", "later"]
    assert env.now == 2.0
    assert len(env) == 1
    assert env.peek() == float("inf")


def test_set_bucket_width_rebuckets_without_reordering():
    env = Environment()
    order = []
    for i in range(50):
        env.schedule(_recorded_event(env, order, i), (i % 7) * 1e-3)
    assert len(env) == 50
    env.set_bucket_width(0.5)
    assert len(env) == 50
    env.run()
    expected = [i for _, i in sorted(((i % 7), i) for i in range(50))]
    assert order == expected


def test_set_bucket_width_mid_run_preserves_pending_order():
    env = Environment()
    order = []

    def rebucket(_e):
        order.append("rebucket")
        env.set_bucket_width(0.25)

    ev = env.event()
    ev._ok = True
    ev.callbacks.append(rebucket)
    env.schedule(ev, 1e-3)
    for i in range(20):
        env.schedule(_recorded_event(env, order, i), 1e-3 + (i % 5) * 1e-3)
    env.run()
    assert order[0] == "rebucket"
    assert order[1:] == [i for _, i in sorted(((i % 5), i) for i in range(20))]


def test_peek_from_callback_does_not_skip_next_bucket():
    # peek() may activate the next bucket when the current one is
    # exhausted; the run loop must pick up the replacement instead of
    # advancing a second time (which would silently drop the bucket).
    env = Environment()
    order = []

    def peeker(_e):
        order.append("first")
        assert env.peek() == 5e-3

    ev = env.event()
    ev._ok = True
    ev.callbacks.append(peeker)
    env.schedule(ev, 1e-3)
    env.schedule(_recorded_event(env, order, "second"), 5e-3)
    env.run()
    assert order == ["first", "second"]


def test_set_bucket_width_rejects_nonpositive():
    env = Environment()
    for bad in (0.0, -1e-3):
        try:
            env.set_bucket_width(bad)
        except SimulationError:
            pass
        else:
            raise AssertionError(f"width {bad} accepted")


def test_hint_slot_width_clamps_to_sane_range():
    env = Environment()
    env.hint_slot_width(10e-3)  # the stock Δ: width = Δ/4
    assert env.bucket_width_s == 2.5e-3
    env.hint_slot_width(1e-9)  # clamped up
    assert env.bucket_width_s == 1e-4
    env.hint_slot_width(1e6)  # clamped down
    assert env.bucket_width_s == 1e-2


def test_hint_slot_width_ignores_degenerate_hints():
    env = Environment()
    before = env.bucket_width_s
    for bad in (0.0, -1.0, float("inf"), float("nan")):
        env.hint_slot_width(bad)
        assert env.bucket_width_s == before


def test_environment_rejects_nonpositive_width():
    try:
        Environment(bucket_width_s=0.0)
    except SimulationError:
        pass
    else:
        raise AssertionError("zero bucket width accepted")


def test_kernel_backend_reports_this_interpreter():
    # In the source checkout the pure-python kernel is what's imported;
    # the compiled CI job asserts the other branch.
    assert kernel_backend() in (PURE, "compiled")
    import repro.sim.environment as mod

    if mod.__file__.endswith(".py"):
        assert kernel_backend() == PURE
