"""Unit tests for events, processes, interrupts and condition events."""

import pytest

from repro.sim import Environment, Event, Interrupt, SimulationError
from repro.sim.errors import StopProcess


# -- bare events ---------------------------------------------------------


def test_event_lifecycle_flags():
    env = Environment()
    ev = env.event()
    assert not ev.triggered and not ev.processed
    ev.succeed(7)
    assert ev.triggered and not ev.processed
    env.step()
    assert ev.processed
    assert ev.value == 7
    assert ev.ok


def test_event_value_before_trigger_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.event().value


def test_double_succeed_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_succeed_after_fail_raises():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("x"))
    with pytest.raises(SimulationError):
        ev.succeed()


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(SimulationError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_failed_event_value_is_the_exception():
    env = Environment()
    ev = env.event()
    exc = RuntimeError("x")
    ev.fail(exc)
    assert ev.value is exc
    assert not ev.ok
    with pytest.raises(RuntimeError):
        env.run()


# -- processes -----------------------------------------------------------


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_process_return_value_visible_to_waiter():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        return "payload"

    def parent(env):
        value = yield env.process(child(env))
        return value

    p = env.process(parent(env))
    assert env.run(until=p) == "payload"


def test_stop_process_exception_sets_return_value():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        raise StopProcess("early")

    p = env.process(child(env))
    assert env.run(until=p) == "early"


def test_process_is_alive_tracks_generator():
    env = Environment()

    def child(env):
        yield env.timeout(5.0)

    p = env.process(child(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_yielding_non_event_kills_process_with_simulation_error():
    env = Environment()

    def bad(env):
        yield 42

    p = env.process(bad(env))
    with pytest.raises(SimulationError, match="not an Event"):
        env.run(until=p)


def test_yielding_foreign_event_fails():
    env1, env2 = Environment(), Environment()

    def bad(env, other):
        yield other.timeout(1.0)

    p = env1.process(bad(env1, env2))
    with pytest.raises(SimulationError, match="different environment"):
        env1.run(until=p)


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    times = []

    def proc(env, ev):
        yield env.timeout(2.0)
        yield ev  # processed at t=0, must not block
        times.append(env.now)

    ev = env.event()
    ev.succeed("old")
    env.process(proc(env, ev))
    env.run()
    assert times == [2.0]


def test_two_processes_can_wait_on_one_event():
    env = Environment()
    got = []

    def waiter(env, ev, tag):
        value = yield ev
        got.append((tag, value, env.now))

    ev = env.event()
    env.process(waiter(env, ev, "a"))
    env.process(waiter(env, ev, "b"))

    def trigger(env, ev):
        yield env.timeout(4.0)
        ev.succeed("v")

    env.process(trigger(env, ev))
    env.run()
    assert got == [("a", "v", 4.0), ("b", "v", 4.0)]


# -- interrupts -----------------------------------------------------------


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def interrupter(env, victim):
        yield env.timeout(3.0)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(3.0, "wake up")]


def test_interrupted_process_can_keep_running():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        log.append(env.now)

    def interrupter(env, victim):
        yield env.timeout(3.0)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [4.0]


def test_interrupt_terminated_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    def late(env, victim):
        yield env.timeout(5.0)
        victim.interrupt()

    victim = env.process(quick(env))
    killer = env.process(late(env, victim))
    with pytest.raises(SimulationError, match="terminated"):
        env.run(until=killer)


def test_process_cannot_interrupt_itself():
    env = Environment()

    def selfish(env):
        yield env.timeout(0.0)
        env.active_process.interrupt()

    p = env.process(selfish(env))
    with pytest.raises(SimulationError, match="interrupt itself"):
        env.run(until=p)


def test_unhandled_interrupt_kills_process():
    env = Environment()

    def sleeper(env):
        yield env.timeout(100.0)

    def interrupter(env, victim):
        yield env.timeout(1.0)
        victim.interrupt("bang")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    with pytest.raises(Interrupt):
        env.run()


# -- condition events -------------------------------------------------------


def test_any_of_triggers_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        result = yield env.any_of([t1, t2])
        return (env.now, list(result.values()))

    p = env.process(proc(env))
    assert env.run(until=p) == (1.0, ["fast"])


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(5.0, value="b")
        result = yield env.all_of([t1, t2])
        return (env.now, sorted(result.values()))

    p = env.process(proc(env))
    assert env.run(until=p) == (5.0, ["a", "b"])


def test_all_of_empty_list_triggers_immediately():
    env = Environment()

    def proc(env):
        result = yield env.all_of([])
        return result

    p = env.process(proc(env))
    assert env.run(until=p) == {}


def test_condition_fails_if_child_fails():
    env = Environment()

    def proc(env):
        ev = env.event()
        ev.fail(RuntimeError("child died"))
        with pytest.raises(RuntimeError, match="child died"):
            yield env.all_of([ev, env.timeout(1.0)])
        return "handled"

    p = env.process(proc(env))
    assert env.run(until=p) == "handled"


def test_any_of_with_already_processed_event():
    env = Environment()

    def proc(env):
        ev = env.event()
        ev.succeed("done")
        yield env.timeout(1.0)  # let ev get processed
        result = yield env.any_of([ev, env.timeout(10.0)])
        return (env.now, list(result.values()))

    p = env.process(proc(env))
    assert env.run(until=p) == (1.0, ["done"])
