"""Unit tests for the DES environment: clock, queue, run loop."""

import pytest

from repro.sim import Environment, SimulationError


def test_initial_time_defaults_to_zero():
    assert Environment().now == 0.0


def test_initial_time_configurable():
    assert Environment(initial_time=5.0).now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(3.5)

    env.process(proc(env))
    env.run()
    assert env.now == 3.5


def test_run_until_number_stops_clock_there():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_number_excludes_events_at_boundary():
    env = Environment()
    fired = []

    def proc(env):
        yield env.timeout(10.0)
        fired.append(env.now)

    env.process(proc(env))
    env.run(until=10.0)
    assert fired == []  # events *at* the boundary do not run


def test_run_until_past_raises():
    env = Environment(initial_time=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"
    assert env.now == 2.0


def test_run_until_event_already_processed_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 42

    p = env.process(proc(env))
    env.run()
    assert env.run(until=p) == 42


def test_run_until_untriggered_event_with_empty_schedule_raises():
    env = Environment()
    pending = env.event()
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=pending)


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    env.timeout(3.0)
    assert env.peek() == 3.0


def test_peek_empty_is_inf():
    assert Environment().peek() == float("inf")


def test_len_counts_queued_events():
    env = Environment()
    env.timeout(1.0)
    env.timeout(2.0)
    assert len(env) == 2


def test_step_on_empty_schedule_raises():
    with pytest.raises(SimulationError):
        Environment().step()


def test_negative_timeout_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_same_time_events_run_in_schedule_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in "abc":
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_unhandled_process_failure_propagates_from_run():
    env = Environment()

    def boom(env):
        yield env.timeout(1.0)
        raise ValueError("kaput")

    env.process(boom(env))
    with pytest.raises(ValueError, match="kaput"):
        env.run()


def test_failure_handled_by_waiter_does_not_propagate():
    env = Environment()
    seen = []

    def boom(env):
        yield env.timeout(1.0)
        raise ValueError("kaput")

    def watcher(env, child):
        try:
            yield child
        except ValueError as exc:
            seen.append(str(exc))

    child = env.process(boom(env))
    env.process(watcher(env, child))
    env.run()
    assert seen == ["kaput"]


def test_clock_is_monotonic_across_many_processes():
    env = Environment()
    stamps = []

    def proc(env, delay):
        yield env.timeout(delay)
        stamps.append(env.now)
        yield env.timeout(delay)
        stamps.append(env.now)

    for delay in (3.0, 1.0, 2.0, 0.5):
        env.process(proc(env, delay))
    env.run()
    assert stamps == sorted(stamps)
