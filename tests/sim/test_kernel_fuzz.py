"""Fuzzing the DES kernel with random process graphs (hypothesis).

These tests generate arbitrary little concurrent programs — chains of
timeouts, forks, joins, semaphore hops, interrupts — and assert the
kernel-level invariants that every higher layer depends on: time never
runs backwards, every process terminates or remains parked on a
declared dependency, and no event fires twice.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Interrupt, Semaphore

# One program step per process: (op, operand)
step = st.one_of(
    st.tuples(st.just("sleep"), st.floats(min_value=0.0, max_value=5.0)),
    st.tuples(st.just("acquire"), st.integers(0, 2)),
    st.tuples(st.just("release"), st.integers(0, 2)),
    st.tuples(st.just("fork"), st.floats(min_value=0.0, max_value=2.0)),
)
program = st.lists(step, max_size=8)


@given(programs=st.lists(program, min_size=1, max_size=6), data=st.data())
@settings(max_examples=120, deadline=None)
def test_random_process_graphs_preserve_invariants(programs, data):
    env = Environment()
    sems = [Semaphore(env, value=2) for _ in range(3)]
    trace = []

    def child(env, delay):
        yield env.timeout(delay)
        trace.append(env.now)

    def run_program(env, steps, tag):
        for op, arg in steps:
            trace.append(env.now)
            if op == "sleep":
                yield env.timeout(arg)
            elif op == "acquire":
                yield sems[arg].acquire()
            elif op == "release":
                # Releases may exceed acquires: semaphores are counters.
                sems[arg].release()
            elif op == "fork":
                yield env.process(child(env, arg))
        trace.append(env.now)

    procs = [
        env.process(run_program(env, steps, i)) for i, steps in enumerate(programs)
    ]
    env.run(until=1000.0)

    # Time observed by processes is monotone overall (the kernel's clock
    # only moves forward, so the append order follows event order).
    assert trace == sorted(trace)
    # Every process either finished or is blocked on a semaphore.
    blocked = sum(s.waiting for s in sems)
    unfinished = sum(1 for p in procs if p.is_alive)
    assert unfinished <= blocked + sum(
        1 for steps in programs for op, _ in steps if op == "acquire"
    )
    # Token conservation per semaphore: value = initial + releases -
    # grants, and never negative.
    for s in sems:
        assert s.value >= 0


@given(
    victims=st.integers(1, 4),
    interrupt_times=st.lists(
        st.floats(min_value=0.1, max_value=9.0), min_size=1, max_size=6
    ),
)
@settings(max_examples=100, deadline=None)
def test_random_interrupt_storms(victims, interrupt_times):
    """Interrupting sleepers at arbitrary times never corrupts the run:
    every victim observes either its natural wakeup or an Interrupt,
    exactly once per sleep."""
    env = Environment()
    log = {i: [] for i in range(victims)}

    def sleeper(env, i):
        while env.now < 9.5:
            try:
                yield env.timeout(1.3)
                log[i].append(("woke", env.now))
            except Interrupt:
                log[i].append(("interrupted", env.now))

    procs = [env.process(sleeper(env, i), name=f"v{i}") for i in range(victims)]

    def interrupter(env):
        for t in sorted(interrupt_times):
            if env.now < t:
                yield env.timeout(t - env.now)
            for p in procs:
                if p.is_alive:
                    p.interrupt("storm")

    env.process(interrupter(env))
    env.run(until=20.0)

    for i, events in log.items():
        times = [t for _, t in events]
        assert times == sorted(times)
        # Interrupts delivered at requested times only.
        for kind, t in events:
            if kind == "interrupted":
                assert any(abs(t - it) < 1e-9 for it in interrupt_times)


@given(
    n_events=st.integers(1, 30),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=100, deadline=None)
def test_event_fires_exactly_once(n_events, seed):
    import random

    rnd = random.Random(seed)
    env = Environment()
    fired = {i: 0 for i in range(n_events)}
    events = {}

    def waiter(env, i):
        yield events[i]
        fired[i] += 1

    def trigger(env, i, delay):
        yield env.timeout(delay)
        events[i].succeed(i)

    for i in range(n_events):
        events[i] = env.event()
        for _ in range(rnd.randint(1, 3)):
            env.process(waiter(env, i))
        env.process(trigger(env, i, rnd.uniform(0, 10)))
    env.run()
    # Each waiter resumed exactly once per event; counts equal waiters.
    for i in range(n_events):
        assert fired[i] >= 1
        assert events[i].processed
        assert events[i].value == i
