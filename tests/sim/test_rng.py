"""Unit tests for named deterministic random streams."""

import numpy as np

from repro.sim import RandomStreams


def test_same_seed_same_name_is_reproducible():
    a = RandomStreams(seed=42).stream("trace").random(10)
    b = RandomStreams(seed=42).stream("trace").random(10)
    assert np.array_equal(a, b)


def test_different_names_are_independent():
    streams = RandomStreams(seed=42)
    a = streams.stream("trace").random(10)
    b = streams.stream("noise").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("trace").random(10)
    b = RandomStreams(seed=2).stream("trace").random(10)
    assert not np.array_equal(a, b)


def test_stream_is_memoised():
    streams = RandomStreams(seed=0)
    assert streams.stream("x") is streams.stream("x")


def test_fork_changes_replicate_but_not_seed():
    base = RandomStreams(seed=7)
    rep1 = base.fork(1)
    assert rep1.seed == 7
    assert rep1.replicate == 1
    a = base.stream("trace").random(5)
    b = rep1.stream("trace").random(5)
    assert not np.array_equal(a, b)


def test_fork_is_reproducible():
    a = RandomStreams(seed=7).fork(3).stream("x").random(5)
    b = RandomStreams(seed=7).fork(3).stream("x").random(5)
    assert np.array_equal(a, b)


def test_consuming_one_stream_does_not_shift_another():
    s1 = RandomStreams(seed=9)
    s1.stream("a").random(1000)  # consume a lot from "a"
    after = s1.stream("b").random(5)

    s2 = RandomStreams(seed=9)
    fresh = s2.stream("b").random(5)
    assert np.array_equal(after, fresh)
