"""Sanitizer over the recovery scenarios: derived kill ordering, not luck.

The core-kill scenario puts a manager death and consumer wakeups at
overlapping timestamps; the cascade chains a triggered fault onto a
window edge. Both must sanitize clean — the kill lands at URGENT
priority (its own ordering group) and every migration side effect is
derived from the kill dispatch — while a *genuine* same-timestamp race
still gets flagged (the regression half below).
"""

from repro.analysis.sanitizer import (
    SanitizingEnvironment,
    install_probes,
    sanitize_scenario,
)
from repro.core.slots import SlotTrack
from repro.faults.chaos import DEFAULT_SCENARIOS
from repro.harness.params import StandardParams
from repro.sim.events import NORMAL, URGENT

BY_NAME = {s.name: s for s in DEFAULT_SCENARIOS}


def _sanitized_env():
    install_probes()
    return SanitizingEnvironment()


def test_core_kill_scenario_sanitizes_clean():
    params = StandardParams(duration_s=0.4, seed=2014)
    report = sanitize_scenario(BY_NAME["core-kill"], params, n_consumers=4)
    assert report.ok, report.render()
    assert report.events_seen > 100


def test_cascade_scenario_sanitizes_clean():
    params = StandardParams(duration_s=0.4, seed=2014)
    report = sanitize_scenario(BY_NAME["cascade"], params, n_consumers=3)
    assert report.ok, report.render()
    assert report.events_seen > 100


def test_urgent_kill_vs_normal_wakeup_is_priority_ordered():
    """A pre-succeeded URGENT event against a NORMAL timeout at the same
    timestamp is ordered by priority — separate groups, no race."""
    env = _sanitized_env()
    track = SlotTrack(0.01)

    kill = env.event()
    kill._ok = True
    kill._value = None
    kill.callbacks.append(lambda ev: track.reserve(0, "killer"))
    env.schedule(kill, 0.5, URGENT)

    def wakeup():
        yield env.timeout(0.5)
        track.reserve(1, "sleeper")

    env.process(wakeup(), name="sleeper")
    env.run()
    assert env.sanitizer.finish().ok


def test_same_priority_kill_style_race_is_still_flagged():
    """Regression: the URGENT carve-out must not blind the sanitizer to
    a real race — the same pair at equal (NORMAL) priority is flagged."""
    env = _sanitized_env()
    track = SlotTrack(0.01)

    pseudo_kill = env.event()
    pseudo_kill._ok = True
    pseudo_kill._value = None
    pseudo_kill.callbacks.append(lambda ev: track.reserve(0, "killer"))
    env.schedule(pseudo_kill, 0.5, NORMAL)

    def wakeup():
        yield env.timeout(0.5)
        track.reserve(1, "sleeper")

    env.process(wakeup(), name="sleeper")
    env.run()
    report = env.sanitizer.finish()

    assert not report.ok
    assert len(report.races) == 1
    race = report.races[0]
    assert race.state == "SlotTrack#0"
    assert race.time_s == 0.5
    assert race.site_a != race.site_b
