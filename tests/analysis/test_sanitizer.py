"""Simultaneity sanitizer: injected races caught, ordered schedules clean."""

from repro.analysis.sanitizer import (
    SanitizingEnvironment,
    install_probes,
    sanitize_scenario,
)
from repro.core.slots import SlotTrack


def _sanitized_env():
    install_probes()
    return SanitizingEnvironment()


def test_injected_same_timestamp_race_names_both_sites():
    env = _sanitized_env()
    track = SlotTrack(0.01)

    def racer_alpha():
        yield env.timeout(0.5)
        track.reserve(0, "alpha")

    def racer_beta():
        yield env.timeout(0.5)
        track.reserve(1, "beta")

    env.process(racer_alpha(), name="alpha")
    env.process(racer_beta(), name="beta")
    env.run()
    report = env.sanitizer.finish()

    assert not report.ok
    assert len(report.races) == 1
    race = report.races[0]
    assert race.state == "SlotTrack#0"
    assert race.time_s == 0.5
    # Both scheduling call sites are named, and they are distinct lines
    # in this test file (one per racer).
    assert "test_sanitizer.py" in race.site_a
    assert "test_sanitizer.py" in race.site_b
    assert race.site_a != race.site_b
    assert "racer_alpha" in race.site_a
    assert "racer_beta" in race.site_b
    rendered = race.render()
    assert race.site_a in rendered and race.site_b in rendered
    assert "heap insertion" in rendered


def test_same_origin_schedules_are_program_ordered():
    """Two timers armed back-to-back from the same context (setup code)
    are ordered by program order — not a heap accident, not a race."""
    env = _sanitized_env()
    track = SlotTrack(0.01)

    t1 = env.timeout(0.5)
    t1.callbacks.append(lambda ev: track.reserve(0, "a"))
    t2 = env.timeout(0.5)
    t2.callbacks.append(lambda ev: track.reserve(1, "b"))
    env.run()

    report = env.sanitizer.finish()
    assert report.ok
    assert report.events_seen == 2


def test_derived_events_are_causally_ordered():
    """An event scheduled *during* a dispatch at the same timestamp is
    ordered after its parent — excluded even against other origins."""
    env = _sanitized_env()
    track = SlotTrack(0.01)

    def parent():
        yield env.timeout(0.5)
        child = env.timeout(0.0)
        child.callbacks.append(lambda ev: track.reserve(0, "child"))

    def bystander():
        yield env.timeout(0.5)
        track.reserve(1, "bystander")

    env.process(parent(), name="parent")
    env.process(bystander(), name="bystander")
    env.run()
    assert env.sanitizer.finish().ok


def test_report_counts_contended_groups():
    env = _sanitized_env()
    for delay in (0.1, 0.1, 0.2):
        env.timeout(delay)
    env.run()
    report = env.sanitizer.finish()
    assert report.ok
    assert report.events_seen == 3
    assert report.contended_groups == 1
    assert "0 race(s)" in report.render()


def test_injected_race_still_flagged_under_batched_dispatch():
    """Regression for the calendar-queue kernel (DESIGN.md §13): the two
    racing reserves land mid-burst in one bucket of 102 same-timestamp
    events, so they dispatch inside a single batched drain — the
    sanitizer must flag exactly that double-push race, nothing else."""
    env = _sanitized_env()
    track = SlotTrack(0.01)

    def filler():
        yield env.timeout(0.5)

    def racer_alpha():
        yield env.timeout(0.5)
        track.reserve(0, "alpha")

    def racer_beta():
        yield env.timeout(0.5)
        track.reserve(1, "beta")

    for i in range(50):
        env.process(filler(), name=f"filler-a{i}")
    env.process(racer_alpha(), name="alpha")
    for i in range(50):
        env.process(filler(), name=f"filler-b{i}")
    env.process(racer_beta(), name="beta")
    env.run()
    report = env.sanitizer.finish()

    assert not report.ok
    assert len(report.races) == 1
    race = report.races[0]
    assert race.state == "SlotTrack#0"
    assert race.time_s == 0.5
    assert "racer_alpha" in race.site_a
    assert "racer_beta" in race.site_b
    # Every event of all 102 processes (start, timeout wakeup, exit)
    # went through the sanitizer's instrumented loop — batching hid
    # none of them.
    assert report.events_seen == 306


def test_golden_scenario_sanitizes_clean():
    from repro.faults.chaos import SMOKE_SCENARIOS
    from repro.harness.params import StandardParams

    params = StandardParams(duration_s=0.3, seed=2014)
    report = sanitize_scenario(SMOKE_SCENARIOS[0], params, n_consumers=2)
    assert report.ok, report.render()
    assert report.events_seen > 100
