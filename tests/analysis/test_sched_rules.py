"""SCHED001/SCHED002: static scheduling-tie hazards."""

from .conftest import codes


def _sched(findings, code):
    return [f for f in findings if f.code == code]


def test_absolute_aim_without_priority_flagged(lint_tree):
    findings = lint_tree(
        {
            "core/aim.py": (
                "BOUNDARY_S = 0.5\n"
                "\n"
                "\n"
                "def aim(env, event):\n"
                "    env.schedule(event, delay=BOUNDARY_S - env.now)\n"
            ),
        }
    )
    hits = _sched(findings, "SCHED001")
    assert len(hits) == 1 and hits[0].line == 5
    assert "absolute" in hits[0].message


def test_absolute_aim_with_priority_clean(lint_tree):
    findings = lint_tree(
        {
            "core/aim.py": (
                "BOUNDARY_S = 0.5\n"
                "\n"
                "\n"
                "def aim(env, event):\n"
                "    env.schedule(event, delay=BOUNDARY_S - env.now, priority=2)\n"
            ),
        }
    )
    assert codes(findings) == []


def test_identical_delays_across_functions_flag_pairwise(lint_tree):
    findings = lint_tree(
        {
            "core/a.py": (
                "def tick_a(env, ev):\n"
                "    env.schedule(ev, delay=0.0)\n"
            ),
            "core/b.py": (
                "def tick_b(env, ev):\n"
                "    env.schedule(ev, delay=0.0)\n"
            ),
        }
    )
    hits = _sched(findings, "SCHED001")
    assert len(hits) == 2
    # each finding names its counterpart's location
    assert any("a.py" in f.message for f in hits)
    assert any("b.py" in f.message for f in hits)


def test_single_site_same_delay_not_flagged(lint_tree):
    """One priority-less site alone can't tie with itself across
    functions — a second call site in the *same* function doesn't pair."""
    findings = lint_tree(
        {
            "core/solo.py": (
                "def tick(env, ev, ev2):\n"
                "    env.schedule(ev, delay=0.0)\n"
                "    env.schedule(ev2, delay=0.1)\n"
            ),
        }
    )
    assert _sched(findings, "SCHED001") == []


def test_priority_silences_the_pair(lint_tree):
    findings = lint_tree(
        {
            "core/a.py": (
                "def tick_a(env, ev):\n"
                "    env.schedule(ev, delay=0.0, priority=0)\n"
            ),
            "core/b.py": (
                "def tick_b(env, ev):\n"
                "    env.schedule(ev, delay=0.0, priority=1)\n"
            ),
        }
    )
    assert _sched(findings, "SCHED001") == []


def test_schedule_at_without_priority_flagged(lint_tree):
    findings = lint_tree(
        {
            "core/at.py": (
                "def aim(env, event, when):\n"
                "    env._schedule_at(when, event=event)\n"
            ),
        }
    )
    hits = _sched(findings, "SCHED001")
    assert len(hits) == 1 and "_schedule_at" in hits[0].message


def test_loop_invariant_fanout_flagged(lint_tree):
    findings = lint_tree(
        {
            "core/fan.py": (
                "def fanout(env, events):\n"
                "    for ev in events:\n"
                "        env.schedule(ev, delay=0.25)\n"
            ),
        }
    )
    hits = _sched(findings, "SCHED002")
    assert len(hits) == 1 and hits[0].line == 3
    assert "fan-out" in hits[0].message


def test_loop_varying_delay_clean(lint_tree):
    findings = lint_tree(
        {
            "core/fan.py": (
                "def fanout(env, events):\n"
                "    for i, ev in enumerate(events):\n"
                "        env.schedule(ev, delay=0.25 * i)\n"
            ),
        }
    )
    assert _sched(findings, "SCHED002") == []


def test_loop_fanout_with_priority_clean(lint_tree):
    findings = lint_tree(
        {
            "core/fan.py": (
                "def fanout(env, events):\n"
                "    for ev in events:\n"
                "        env.schedule(ev, delay=0.25, priority=3)\n"
            ),
        }
    )
    assert _sched(findings, "SCHED002") == []


def test_pragma_suppresses_sched(lint_tree):
    findings = lint_tree(
        {
            "core/aim.py": (
                "def aim(env, event, t):\n"
                "    # repro: allow[SCHED001] -- sole event at this boundary\n"
                "    env.schedule(event, delay=t - env.now)\n"
            ),
        }
    )
    assert _sched(findings, "SCHED001") == []
