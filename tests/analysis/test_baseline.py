"""Baseline: grandfathered findings, kernel rejection, staleness."""

import json

import pytest

from repro.analysis.baseline import (
    BaselineError,
    load_baseline,
    split_findings,
    write_baseline,
)
from repro.analysis.engine import main
from repro.analysis.findings import Finding


def _finding(path="src/repro/harness/x.py", code="DET001", line=3):
    return Finding(
        path=path, line=line, col=1, code=code, message=f"msg for {code}"
    )


def test_roundtrip_splits_matched_findings(tmp_path):
    bl = tmp_path / "bl.json"
    f = _finding()
    write_baseline(bl, [f])
    loaded = load_baseline(bl)
    new, baselined, stale = split_findings([f, _finding(code="DET003")], loaded)
    assert [x.code for x in new] == ["DET003"]
    assert [x.code for x in baselined] == ["DET001"]
    assert stale == []


def test_line_moves_do_not_resurrect(tmp_path):
    """Match key is (path, code, message-hash) — a finding that drifted
    to another line still counts as baselined."""
    bl = tmp_path / "bl.json"
    write_baseline(bl, [_finding(line=3)])
    new, baselined, _ = split_findings(
        [_finding(line=30)], load_baseline(bl)
    )
    assert new == [] and len(baselined) == 1


def test_stale_entries_reported(tmp_path):
    bl = tmp_path / "bl.json"
    write_baseline(bl, [_finding()])
    new, baselined, stale = split_findings([], load_baseline(bl))
    assert new == [] and baselined == []
    assert len(stale) == 1 and stale[0]["code"] == "DET001"


def test_write_refuses_kernel_findings(tmp_path):
    bl = tmp_path / "bl.json"
    with pytest.raises(BaselineError, match="kernel"):
        write_baseline(bl, [_finding(path="src/repro/sim/env.py")])


def test_load_rejects_kernel_entries(tmp_path):
    bl = tmp_path / "bl.json"
    bl.write_text(
        json.dumps(
            {
                "schema": "repro.lint-baseline/1",
                "entries": [
                    {
                        "path": "src/repro/buffers/slab.py",
                        "code": "DET001",
                        "message_hash": "abc123def456",
                    }
                ],
            }
        ),
        encoding="utf-8",
    )
    with pytest.raises(BaselineError, match="kernel"):
        load_baseline(bl)


def test_load_rejects_wrong_schema(tmp_path):
    bl = tmp_path / "bl.json"
    bl.write_text('{"schema": "other/1", "entries": []}', encoding="utf-8")
    with pytest.raises(BaselineError, match="schema"):
        load_baseline(bl)


def test_cli_baseline_flow(tmp_path, capsys):
    """--write-baseline then --baseline: exit goes 1 -> 0."""
    target = tmp_path / "repro" / "harness"
    target.mkdir(parents=True)
    (target / "bad.py").write_text(
        "import time\nt = time.time()\n", encoding="utf-8"
    )
    bl = tmp_path / "bl.json"
    assert main([str(tmp_path), "--no-cache"]) == 1
    assert main([str(tmp_path), "--no-cache", "--write-baseline", str(bl)]) == 0
    capsys.readouterr()
    assert main([str(tmp_path), "--no-cache", "--baseline", str(bl)]) == 0
    assert "baselined" in capsys.readouterr().out


def test_cli_kernel_baseline_exits_two(tmp_path, capsys):
    bl = tmp_path / "bl.json"
    bl.write_text(
        json.dumps(
            {
                "schema": "repro.lint-baseline/1",
                "entries": [
                    {
                        "path": "src/repro/power/meter.py",
                        "code": "DET001",
                        "message_hash": "abc123def456",
                    }
                ],
            }
        ),
        encoding="utf-8",
    )
    (tmp_path / "repro").mkdir()
    (tmp_path / "repro" / "ok.py").write_text("x = 1\n", encoding="utf-8")
    assert main([str(tmp_path / "repro"), "--no-cache", "--baseline", str(bl)]) == 2
    assert "kernel" in capsys.readouterr().err


def test_shipped_baseline_is_empty():
    """Acceptance: the committed baseline carries zero entries — the
    whole tree passes the new rules with in-line pragmas only."""
    from pathlib import Path

    repo = Path(__file__).resolve().parents[2]
    doc = json.loads(
        (repo / "results" / "lint-baseline.json").read_text(encoding="utf-8")
    )
    assert doc["schema"] == "repro.lint-baseline/1"
    assert doc["entries"] == []
