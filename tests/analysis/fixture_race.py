"""Fixture shared by the static/dynamic agreement test.

:func:`aim` carries the one scheduling hazard: a priority-less
``schedule()`` whose delay subtracts ``env.now`` — it aims at the
absolute :data:`BOUNDARY_S` timestamp, so every event routed through it
lands on the same boundary and their mutual order is heap insertion
order. The static analyzer flags the call site as SCHED001;
:func:`run_race` drives the same code under the dynamic sanitizer until
two boundary events from different dispatch origins mutate one buffer,
producing a :class:`SimultaneityRace` that names the same line.
"""

from repro.buffers.bounded import BoundedBuffer
from repro.sim.events import Event

#: The absolute virtual timestamp every aimed event lands on.
BOUNDARY_S = 0.5


class _Tick(Event):
    """A pre-succeeded event whose dispatch pushes into a shared buffer."""

    def __init__(self, env, buffer) -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        assert self.callbacks is not None
        self.callbacks.append(lambda _ev: buffer.try_push("tick"))

    def describe(self) -> str:
        return "boundary tick"


def aim(env, event) -> None:
    """Aim ``event`` at the epoch boundary (the SCHED001 hazard site)."""
    env.schedule(event, delay=BOUNDARY_S - env.now)


HAZARD_FUNC = "aim"


def run_race():
    """Run the hazard under the sanitizer; returns its report."""
    from repro.analysis.sanitizer import SanitizingEnvironment, install_probes

    install_probes()
    env = SanitizingEnvironment()
    buffer = BoundedBuffer(capacity=8)
    # Two independent starters at distinct times: each dispatch is its
    # own causal origin, and each routes a fresh tick through aim(), so
    # both ticks tie at BOUNDARY_S with no ordering between them.
    for start_s in (0.1, 0.2):
        starter = Event(env)
        starter._ok = True
        starter._value = None
        assert starter.callbacks is not None
        starter.callbacks.append(lambda _ev: aim(env, _Tick(env, buffer)))
        env.schedule(starter, delay=start_s)
    env.run()
    return env.sanitizer.finish()
