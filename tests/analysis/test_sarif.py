"""SARIF 2.1.0 rendering + the structural validator CI gates on."""

import json

from repro.analysis.findings import Finding
from repro.analysis.sarif import render_sarif, validate_sarif


def _finding(**kw):
    base = dict(
        path="src/repro/core/x.py",
        line=12,
        col=5,
        code="DET005",
        message="nondeterministic value reaches schedule()",
    )
    base.update(kw)
    return Finding(**base)


def test_rendered_document_validates(lint_snippet):
    doc = render_sarif([_finding(), _finding(line=40, code="SCHED001")])
    assert validate_sarif(doc) == []


def test_empty_finding_set_validates():
    assert validate_sarif(render_sarif([])) == []


def test_results_reference_the_rule_table():
    doc = json.loads(render_sarif([_finding()]))
    run = doc["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    res = run["results"][0]
    assert rules[res["ruleIndex"]]["id"] == res["ruleId"] == "DET005"
    region = res["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 12 and region["startColumn"] == 5


def test_rule_table_carries_registered_summaries():
    doc = json.loads(render_sarif([]))
    rules = {
        r["id"]: r["shortDescription"]["text"]
        for r in doc["runs"][0]["tool"]["driver"]["rules"]
    }
    assert "DET005" in rules and "SCHED001" in rules
    assert rules["DET005"] != "DET005"  # a real summary, not a fallback


def test_validator_rejects_structural_damage():
    good = json.loads(render_sarif([_finding()]))
    bad = json.loads(json.dumps(good))
    bad["version"] = "2.0.0"
    assert any("version" in p for p in validate_sarif(json.dumps(bad)))

    bad = json.loads(json.dumps(good))
    bad["runs"][0]["results"][0]["ruleIndex"] = 999
    assert any("ruleIndex" in p for p in validate_sarif(json.dumps(bad)))

    bad = json.loads(json.dumps(good))
    del bad["runs"][0]["results"][0]["message"]
    assert any("message" in p for p in validate_sarif(json.dumps(bad)))

    bad = json.loads(json.dumps(good))
    bad["runs"][0]["results"][0]["locations"] = []
    assert any("locations" in p for p in validate_sarif(json.dumps(bad)))

    assert validate_sarif("{nope") != []


def test_cli_sarif_output_validates(tmp_path, capsys):
    from repro.analysis.engine import main

    target = tmp_path / "repro" / "core"
    target.mkdir(parents=True)
    (target / "bad.py").write_text(
        "import time\nt = time.time()\n", encoding="utf-8"
    )
    assert main([str(tmp_path), "--no-cache", "--format", "sarif"]) == 1
    out = capsys.readouterr().out
    assert validate_sarif(out) == []
    doc = json.loads(out)
    assert doc["runs"][0]["results"][0]["ruleId"] == "DET001"
