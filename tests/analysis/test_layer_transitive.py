"""Transitive LAYER001/LAYER002: the matrix over the import graph."""


def _layer(findings, code):
    return [f for f in findings if f.code == code]


def test_kernel_reaches_harness_through_intermediate(lint_tree):
    findings = lint_tree(
        {
            "harness/runner.py": "X = 1\n",
            "util/shim.py": "import repro.harness.runner\n",
            "sim/user.py": "import repro.util.shim\n",
        }
    )
    hits = [
        f
        for f in _layer(findings, "LAYER001")
        if f.path.endswith("sim/user.py")
    ]
    assert len(hits) == 1
    assert hits[0].line == 1  # anchored at the first hop's import
    assert "repro.util.shim -> repro.harness.runner" in hits[0].message


def test_direct_violation_not_double_reported(lint_tree):
    """A direct forbidden import is the local rule's finding; the
    transitive rule must not re-report it."""
    findings = lint_tree(
        {
            "harness/runner.py": "X = 1\n",
            "sim/user.py": "import repro.harness.runner\n",
        }
    )
    hits = _layer(findings, "LAYER001")
    assert len(hits) == 1  # exactly one — from the direct rule
    assert "must not import" in hits[0].message


def test_numpy_reaches_sim_through_reexport(lint_tree):
    findings = lint_tree(
        {
            "util/mathy.py": "import numpy\n",
            "sim/disp.py": "import repro.util.mathy\n",
        }
    )
    hits = [
        f
        for f in _layer(findings, "LAYER002")
        if f.path.endswith("sim/disp.py")
    ]
    assert len(hits) == 1
    assert "repro.util.mathy -> numpy" in hits[0].message


def test_numpy_via_sim_rng_sanctioned(lint_tree):
    findings = lint_tree(
        {
            "sim/rng.py": "import numpy\n",
            "sim/disp.py": "import repro.sim.rng\n",
        }
    )
    assert _layer(findings, "LAYER002") == []


def test_telemetry_clock_shim_skip_holds_transitively(lint_tree):
    """telemetry -> harness.clock is the sanctioned edge; reachability
    must not traverse *through* it into the rest of the harness."""
    findings = lint_tree(
        {
            "harness/clock.py": "import repro.harness.runner\n",
            "harness/runner.py": "X = 1\n",
            "telemetry/prof.py": "import repro.harness.clock\n",
        }
    )
    assert [
        f
        for f in _layer(findings, "LAYER001")
        if f.path.endswith("telemetry/prof.py")
    ] == []
