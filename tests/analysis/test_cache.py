"""Incremental facts cache: hits skip the parse, edits invalidate,
analyzer-version changes discard wholesale."""

import ast

from repro.analysis.cache import LintCache
from repro.analysis.engine import analyze


def _tree(tmp_path):
    root = tmp_path / "repro" / "core"
    root.mkdir(parents=True)
    (root / "a.py").write_text(
        "import time\nt = time.time()\n", encoding="utf-8"
    )
    (root / "b.py").write_text("x = 1\n", encoding="utf-8")
    return tmp_path


def test_warm_run_hits_every_file_with_identical_findings(tmp_path):
    tree = _tree(tmp_path)
    cdir = tmp_path / "cache"
    cold = analyze([tree], cache=LintCache(cdir))
    warm = analyze([tree], cache=LintCache(cdir))
    assert cold.stats["cache_misses"] == 2 and cold.stats["cache_hits"] == 0
    assert warm.stats["cache_hits"] == 2 and warm.stats["cache_misses"] == 0
    assert warm.findings == cold.findings
    assert [f.code for f in warm.findings] == ["DET001"]


def test_warm_run_never_parses(tmp_path, monkeypatch):
    """A full cache hit must not touch ast.parse at all."""
    tree = _tree(tmp_path)
    cdir = tmp_path / "cache"
    analyze([tree], cache=LintCache(cdir))

    def boom(*a, **k):
        raise AssertionError("ast.parse called on a warm run")

    monkeypatch.setattr(ast, "parse", boom)
    warm = analyze([tree], cache=LintCache(cdir))
    assert warm.stats["cache_hits"] == 2


def test_edit_invalidates_only_that_file(tmp_path):
    tree = _tree(tmp_path)
    cdir = tmp_path / "cache"
    analyze([tree], cache=LintCache(cdir))
    (tree / "repro" / "core" / "b.py").write_text(
        "import random\ny = random.random()\n", encoding="utf-8"
    )
    warm = analyze([tree], cache=LintCache(cdir))
    assert warm.stats["cache_hits"] == 1
    assert warm.stats["cache_misses"] == 1
    assert sorted(f.code for f in warm.findings) == ["DET001", "DET003"]


def test_cross_file_summary_invalidation(tmp_path):
    """Editing a *callee* changes findings anchored in its caller — the
    project pass recomputes over fresh facts even though the caller's
    file is itself a cache hit."""
    root = tmp_path / "repro"
    (root / "core").mkdir(parents=True)
    (root / "sim").mkdir(parents=True)
    (root / "core" / "helper.py").write_text(
        "def delta():\n    return 0.5\n", encoding="utf-8"
    )
    (root / "sim" / "user.py").write_text(
        "from repro.core.helper import delta\n"
        "\n"
        "\n"
        "def kick(env, event):\n"
        "    env.schedule(event, delay=delta(), priority=1)\n",
        encoding="utf-8",
    )
    cdir = tmp_path / "cache"
    clean = analyze([tmp_path], cache=LintCache(cdir))
    assert clean.findings == []
    # the callee goes nondeterministic; the caller file is unchanged
    (root / "core" / "helper.py").write_text(
        "import time\n"
        "\n"
        "\n"
        "def delta():\n"
        "    return time.time()  # repro: allow[DET001] -- source\n",
        encoding="utf-8",
    )
    dirty = analyze([tmp_path], cache=LintCache(cdir))
    assert dirty.stats["cache_hits"] == 1  # user.py facts reused
    det005 = [f for f in dirty.findings if f.code == "DET005"]
    assert len(det005) == 1 and det005[0].path.endswith("sim/user.py")


def test_rule_set_change_discards_cache(tmp_path, monkeypatch):
    tree = _tree(tmp_path)
    cdir = tmp_path / "cache"
    analyze([tree], cache=LintCache(cdir))
    import repro.analysis.registry as registry

    monkeypatch.setattr(
        registry, "rule_codes", lambda: ["SOMETHING_ELSE"]
    )
    cache = LintCache(cdir)
    warm = analyze([tree], cache=cache)
    assert warm.stats["cache_misses"] == 2


def test_corrupt_cache_file_is_ignored(tmp_path):
    tree = _tree(tmp_path)
    cdir = tmp_path / "cache"
    cdir.mkdir()
    (cdir / "facts.json").write_text("{not json", encoding="utf-8")
    result = analyze([tree], cache=LintCache(cdir))
    assert result.stats["cache_misses"] == 2
    assert [f.code for f in result.findings] == ["DET001"]
