"""DET005: the interprocedural taint pass.

Every test builds a small multi-file tree and asserts on the
whole-program findings — the injected leaks here are exactly the shapes
the per-scope DET rules cannot see.
"""

from .conftest import codes


def _det005(findings):
    return [f for f in findings if f.code == "DET005"]


def test_wall_clock_through_helper_reaches_schedule(lint_tree):
    """The motivating case: a wall-clock read returned by a helper in
    another module, fed into ``schedule()`` inside the kernel."""
    findings = lint_tree(
        {
            "harness/util.py": (
                "import time\n"
                "\n"
                "\n"
                "def stamp():\n"
                "    return time.time()  # repro: allow[DET001] -- harness-side read\n"
            ),
            "sim/user.py": (
                "from repro.harness.util import stamp\n"
                "\n"
                "\n"
                "def kick(env, event):\n"
                "    env.schedule(event, delay=stamp(), priority=1)\n"
            ),
        }
    )
    hits = _det005(findings)
    assert len(hits) == 1
    assert hits[0].path.endswith("sim/user.py")
    assert hits[0].line == 5
    assert "wall-clock" in hits[0].message


def test_clock_shim_values_are_wall_clock_sources(lint_tree):
    """repro.harness.clock is DET001-exempt, but its *values* are host
    time — the flow rule is the only guard on them."""
    findings = lint_tree(
        {
            "core/user.py": (
                "from repro.harness.clock import perf_counter\n"
                "\n"
                "\n"
                "def kick(env, event):\n"
                "    env.schedule(event, delay=perf_counter(), priority=1)\n"
            ),
        }
    )
    hits = _det005(findings)
    assert len(hits) == 1 and "wall-clock" in hits[0].message


def test_taint_survives_scalar_transforms_and_return_chain(lint_tree):
    """max()/float() wrappers and a two-hop return chain don't launder."""
    findings = lint_tree(
        {
            "core/a.py": (
                "import time\n"
                "\n"
                "\n"
                "def raw():\n"
                "    return time.time()  # repro: allow[DET001] -- source\n"
            ),
            "core/b.py": (
                "from repro.core.a import raw\n"
                "\n"
                "\n"
                "def shaped():\n"
                "    return max(0.0, float(raw()))\n"
            ),
            "sim/user.py": (
                "from repro.core.b import shaped\n"
                "\n"
                "\n"
                "def kick(env, event):\n"
                "    env.schedule(event, delay=shaped(), priority=1)\n"
            ),
        }
    )
    hits = _det005(findings)
    assert [f.path.split("repro/")[-1] for f in hits] == ["sim/user.py"]


def test_kernel_attr_write_flagged_only_in_kernel_layers(lint_tree):
    source = (
        "import random\n"
        "\n"
        "\n"
        "class Thing:\n"
        "    def __init__(self):\n"
        "        self.jitter = random.random()  # repro: allow[DET003] -- local rule\n"
    )
    kernel = lint_tree({"buffers/thing.py": source})
    assert len(_det005(kernel)) == 1
    assert "kernel state" in _det005(kernel)[0].message


def test_attr_write_outside_kernel_not_flagged(lint_tree):
    source = (
        "import random\n"
        "\n"
        "\n"
        "class Thing:\n"
        "    def __init__(self):\n"
        "        self.jitter = random.random()  # repro: allow[DET003] -- local rule\n"
    )
    harness = lint_tree({"harness/thing.py": source})
    assert _det005(harness) == []


def test_tainted_argument_flows_into_callee_schedule(lint_tree):
    """Parameter flow: the *caller* passes entropy into a helper that
    schedules with it — flagged at the caller's call site."""
    findings = lint_tree(
        {
            "core/fwd.py": (
                "def fire(env, event, delay):\n"
                "    env.schedule(event, delay=delay, priority=1)\n"
            ),
            "core/user.py": (
                "import random\n"
                "from repro.core.fwd import fire\n"
                "\n"
                "\n"
                "def kick(env, event):\n"
                "    fire(env, event, random.random())  # repro: allow[DET003] -- local rule\n"
            ),
        }
    )
    hits = _det005(findings)
    assert len(hits) == 1
    assert hits[0].path.endswith("core/user.py") and hits[0].line == 6
    assert "unseeded-rng" in hits[0].message


def test_set_order_iteration_after_call_boundary(lint_tree):
    findings = lint_tree(
        {
            "core/maker.py": (
                "def live_ids(consumers):\n"
                "    return {c.cid for c in consumers}"
                "  # repro: allow[DET004] -- construction only\n"
            ),
            "core/user.py": (
                "from repro.core.maker import live_ids\n"
                "\n"
                "\n"
                "def drain(consumers):\n"
                "    for cid in live_ids(consumers):\n"
                "        print(cid)\n"
            ),
        }
    )
    hits = _det005(findings)
    assert len(hits) == 1
    assert hits[0].path.endswith("core/user.py") and hits[0].line == 5
    assert "hash-ordered" in hits[0].message


def test_sorted_kills_set_order(lint_tree):
    findings = lint_tree(
        {
            "core/maker.py": (
                "def live_ids(consumers):\n"
                "    return {c.cid for c in consumers}"
                "  # repro: allow[DET004] -- construction only\n"
            ),
            "core/user.py": (
                "from repro.core.maker import live_ids\n"
                "\n"
                "\n"
                "def drain(consumers):\n"
                "    for cid in sorted(live_ids(consumers)):\n"
                "        print(cid)\n"
            ),
        }
    )
    assert _det005(findings) == []


def test_reexport_chain_resolution(lint_tree):
    """Taint resolves through a package __init__ re-export."""
    findings = lint_tree(
        {
            "core/__init__.py": "from repro.core.deep import stamp\n",
            "core/deep.py": (
                "import time\n"
                "\n"
                "\n"
                "def stamp():\n"
                "    return time.time()  # repro: allow[DET001] -- source\n"
            ),
            "sim/user.py": (
                "from repro.core import stamp\n"
                "\n"
                "\n"
                "def kick(env, event):\n"
                "    env.schedule(event, delay=stamp(), priority=1)\n"
            ),
        }
    )
    hits = _det005(findings)
    assert len(hits) == 1 and hits[0].path.endswith("sim/user.py")


def test_clean_cross_module_flow_stays_clean(lint_tree):
    findings = lint_tree(
        {
            "core/a.py": "def delta():\n    return 0.5\n",
            "sim/user.py": (
                "from repro.core.a import delta\n"
                "\n"
                "\n"
                "def kick(env, event):\n"
                "    env.schedule(event, delay=delta(), priority=1)\n"
            ),
        }
    )
    assert codes(findings) == []
