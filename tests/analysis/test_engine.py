"""Engine-level tests: exit codes, output formats, names generation."""

import json
import re

from repro.analysis.engine import main
from repro.trace import REGISTERED_NAMES


def _write(tmp_path, rel, source):
    path = tmp_path / "repro" / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def test_clean_tree_exits_zero(tmp_path, capsys):
    _write(tmp_path, "core/ok.py", "x = 1\n")
    assert main([str(tmp_path), "--no-cache"]) == 0
    assert "clean" in capsys.readouterr().out


def test_finding_exits_one_with_location(tmp_path, capsys):
    path = _write(tmp_path, "core/bad.py", "import time\nt = time.time()\n")
    assert main([str(tmp_path), "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert f"{path}:2:" in out
    assert "DET001" in out


def test_json_format(tmp_path, capsys):
    _write(tmp_path, "core/bad.py", "import random\nx = random.random()\n")
    assert main([str(tmp_path), "--no-cache", "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.lint/2"
    assert doc["findings"][0]["code"] == "DET003"


def test_missing_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "nope"), "--no-cache"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_parse_error_exits_two(tmp_path, capsys):
    _write(tmp_path, "core/broken.py", "def f(:\n")
    assert main([str(tmp_path), "--no-cache"]) == 2
    err = capsys.readouterr().err
    assert re.search(r"broken\.py:1: parse error: ", err)


def test_parse_error_still_reports_other_files(tmp_path, capsys):
    """One unparseable file must not mute findings elsewhere."""
    _write(tmp_path, "core/broken.py", "def f(:\n")
    _write(tmp_path, "core/bad.py", "import time\nt = time.time()\n")
    assert main([str(tmp_path), "--no-cache"]) == 2
    captured = capsys.readouterr()
    assert "parse error" in captured.err
    assert "DET001" in captured.out


def test_write_names_generates_registry(tmp_path, capsys):
    _write(
        tmp_path,
        "core/emitter.py",
        "def emit(tracer):\n"
        "    tracer.instant('core0', 'alpha')\n"
        "    tracer.counter('core0', 'beta', 1.0)\n",
    )
    out = tmp_path / "names.py"
    assert main([str(tmp_path), "--write-names", "--names-out", str(out)]) == 0
    text = out.read_text(encoding="utf-8")
    assert "REGISTERED_NAMES" in text
    assert '"alpha"' in text and '"beta"' in text


def test_shipped_tree_is_clean_and_names_current(capsys):
    """The acceptance gate: `repro lint src` exits 0 on the real tree,
    and the generated registry matches the tracer call sites."""
    from pathlib import Path

    from repro.analysis.rules_trace import collect_trace_names

    src = Path(__file__).resolve().parents[2] / "src"
    assert main([str(src), "--no-cache"]) == 0
    assert collect_trace_names([src]) == set(REGISTERED_NAMES)
