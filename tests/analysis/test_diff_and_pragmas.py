"""--diff reverse-dependency cone scoping + pragma list/unused reports."""

import json
import subprocess

from repro.analysis.engine import analyze, main
from repro.analysis.registry import parse_pragmas, suppression_map


def _git(cwd, *args):
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
        cwd=cwd,
        check=True,
        capture_output=True,
    )


def test_diff_reports_dependents_of_changed_files(tmp_path, monkeypatch, capsys):
    root = tmp_path / "repro"
    (root / "core").mkdir(parents=True)
    (root / "sim").mkdir(parents=True)
    (root / "harness").mkdir(parents=True)
    helper = root / "core" / "helper.py"
    helper.write_text("def delta():\n    return 0.5\n", encoding="utf-8")
    (root / "sim" / "user.py").write_text(
        "from repro.core.helper import delta\n"
        "\n"
        "\n"
        "def kick(env, event):\n"
        "    env.schedule(event, delay=delta(), priority=1)\n",
        encoding="utf-8",
    )
    # an unrelated file with its own finding — must NOT appear in --diff
    (root / "harness" / "other.py").write_text(
        "import time\nt = time.time()\n", encoding="utf-8"
    )
    monkeypatch.chdir(tmp_path)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-qm", "base")
    # change only the callee; the caller in sim/ gains a DET005
    helper.write_text(
        "import time\n"
        "\n"
        "\n"
        "def delta():\n"
        "    return time.time()  # repro: allow[DET001] -- source\n",
        encoding="utf-8",
    )
    rc = main(["repro", "--no-cache", "--diff", "HEAD", "--format", "json"])
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    paths = {f["path"] for f in doc["findings"]}
    assert any(p.endswith("sim/user.py") for p in paths)
    assert not any(p.endswith("harness/other.py") for p in paths)


def test_diff_bad_ref_exits_two(tmp_path, monkeypatch, capsys):
    (tmp_path / "repro").mkdir()
    (tmp_path / "repro" / "ok.py").write_text("x = 1\n", encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    _git(tmp_path, "init", "-q")
    assert main(["repro", "--no-cache", "--diff", "no-such-ref"]) == 2
    assert "--diff" in capsys.readouterr().err


def test_pragma_comma_list_suppresses_multiple_codes(lint_snippet):
    findings = lint_snippet(
        "import time\n"
        "import random\n"
        "t = time.time()  # repro: allow[DET001,DET003] -- both on one line\n"
        "r = random.random()  # repro: allow[DET003, DET001] -- spaces fine\n"
    )
    assert findings == []


def test_pragma_records_track_coverage():
    pragmas = parse_pragmas(
        [
            "# repro: allow[DET001,LAYER001] -- own line",
            "x = 1",
            "y = 2  # repro: allow[DET003] -- trailing",
        ]
    )
    assert pragmas[0]["codes"] == ["DET001", "LAYER001"]
    assert pragmas[0]["covers"] == [1, 2]
    assert pragmas[1]["covers"] == [3]
    supp = suppression_map(pragmas)
    assert supp[2] == frozenset({"DET001", "LAYER001"})


def test_unused_suppressions_reported_in_json(tmp_path):
    root = tmp_path / "repro" / "core"
    root.mkdir(parents=True)
    (root / "mixed.py").write_text(
        "import time\n"
        "t = time.time()  # repro: allow[DET001] -- used\n"
        "# repro: allow[DET003,LAYER001] -- nothing here triggers these\n"
        "x = 1\n",
        encoding="utf-8",
    )
    result = analyze([tmp_path])
    assert result.findings == []
    assert len(result.unused_suppressions) == 1
    entry = result.unused_suppressions[0]
    assert entry["line"] == 3
    assert entry["codes"] == ["DET003", "LAYER001"]


def test_unused_suppressions_in_cli_json(tmp_path, capsys):
    root = tmp_path / "repro" / "core"
    root.mkdir(parents=True)
    (root / "stale.py").write_text(
        "# repro: allow[DET001] -- stale\nx = 1\n", encoding="utf-8"
    )
    assert main([str(tmp_path), "--no-cache", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["unused_suppressions"] == [
        {
            "codes": ["DET001"],
            "line": 1,
            "path": str(root / "stale.py"),
        }
    ]


def test_shipped_tree_has_no_unused_suppressions():
    """Every pragma in src/ still earns its keep."""
    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src"
    result = analyze([src])
    assert result.unused_suppressions == []
