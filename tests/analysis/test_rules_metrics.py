"""METRIC001 (metric name literals must be registered) and the
telemetry names-table generator, plus the telemetry LAYER branch."""

from pathlib import Path

from repro.analysis.engine import main
from repro.analysis.rules_metrics import (
    collect_metric_names,
    render_metric_names_module,
)
from repro.telemetry.names import REGISTERED_NAMES

from tests.analysis.conftest import codes

SRC = Path(__file__).resolve().parents[2] / "src"


def test_registered_name_is_clean(lint_snippet):
    findings = lint_snippet(
        "def wire(metrics):\n"
        "    metrics.counter('wakeups_total', kind='slot')\n"
    )
    assert "METRIC001" not in codes(findings)


def test_unregistered_name_is_flagged(lint_snippet):
    findings = lint_snippet(
        "def wire(metrics):\n"
        "    metrics.counter('totally_novel_metric')\n"
    )
    hits = [f for f in findings if f.code == "METRIC001"]
    assert len(hits) == 1
    assert "totally_novel_metric" in hits[0].message


def test_all_instrument_kinds_are_checked(lint_snippet):
    findings = lint_snippet(
        "def wire(registry):\n"
        "    registry.gauge('nope_g')\n"
        "    registry.histogram('nope_h', buckets=(1, 2))\n"
        "    registry.counter(name='nope_c')\n"
    )
    hits = [f for f in findings if f.code == "METRIC001"]
    assert len(hits) == 3


def test_non_registry_receivers_are_ignored(lint_snippet):
    # `.counter(...)` on something that isn't a metrics/registry handle
    # (e.g. collections.Counter factories) must not trip the rule.
    findings = lint_snippet(
        "def other(stats):\n"
        "    stats.counter('not_a_metric')\n"
    )
    assert "METRIC001" not in codes(findings)


def test_private_attribute_receivers_are_checked(lint_snippet):
    findings = lint_snippet(
        "class C:\n"
        "    def wire(self):\n"
        "        self._metrics.counter('nope')\n"
    )
    assert "METRIC001" in codes(findings)


def test_committed_table_matches_the_tree():
    """The checked-in telemetry/names.py is exactly what the generator
    produces from src — regenerating must be a no-op."""
    names = collect_metric_names([SRC])
    assert names == REGISTERED_NAMES


def test_generator_renders_committed_format(tmp_path):
    src = tmp_path / "repro" / "core" / "m.py"
    src.parent.mkdir(parents=True)
    src.write_text(
        "def wire(metrics):\n"
        "    metrics.counter('b_total')\n"
        "    metrics.gauge('a_value')\n",
        encoding="utf-8",
    )
    out = tmp_path / "names.py"
    rc = main(
        [str(tmp_path), "--write-names", "--metric-names-out", str(out)]
    )
    assert rc == 0
    text = out.read_text(encoding="utf-8")
    assert '"a_value",' in text and '"b_total",' in text
    assert "REGISTERED_NAMES = frozenset(" in text
    # Alphabetical ordering keeps the generated file diff-stable.
    assert text.index('"a_value"') < text.index('"b_total"')


def test_generated_names_module_is_importable(tmp_path):
    text = render_metric_names_module({"x_total", "a_value"})
    namespace = {}
    exec(compile(text, "<names>", "exec"), namespace)
    assert namespace["REGISTERED_NAMES"] == frozenset({"x_total", "a_value"})


def test_telemetry_layer_may_not_import_harness(lint_snippet):
    findings = lint_snippet(
        "from repro.harness.runner import Rig\n",
        rel="telemetry/bad.py",
    )
    assert "LAYER001" in codes(findings)


def test_telemetry_layer_clock_shim_is_allowed(lint_snippet):
    findings = lint_snippet(
        "from repro.harness.clock import perf_counter\n",
        rel="telemetry/profiler_like.py",
    )
    assert "LAYER001" not in codes(findings)


def test_kernel_layers_may_import_telemetry(lint_snippet):
    findings = lint_snippet(
        "from repro.telemetry import NULL_REGISTRY\n",
        rel="core/consumer_like.py",
    )
    assert "LAYER001" not in codes(findings)
