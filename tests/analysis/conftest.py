"""Shared fixture: lint a source snippet as if it lived in src/repro.

Rules key off the module's layer (derived from the last ``repro`` path
component), so snippets are written under ``<tmp>/repro/<layer>/...``.
"""

import pytest

from repro.analysis.engine import lint_paths


@pytest.fixture
def lint_snippet(tmp_path):
    def _lint(source, rel="core/snippet.py"):
        path = tmp_path / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        findings, errors = lint_paths([path])
        assert not errors, errors
        return findings

    return _lint


@pytest.fixture
def lint_tree(tmp_path):
    """Whole-program variant: lint a dict of ``{rel: source}`` files laid
    out under one ``repro`` root so cross-file rules see all of them."""

    def _lint(files):
        for rel, source in files.items():
            path = tmp_path / "repro" / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
        findings, errors = lint_paths([tmp_path])
        assert not errors, errors
        return findings

    return _lint


def codes(findings):
    return [f.code for f in findings]
