"""Per-rule fixture tests: positive finding, suppression, clean variant."""

from tests.analysis.conftest import codes


# -- DET001: wall clock ------------------------------------------------------


def test_det001_flags_time_calls(lint_snippet):
    findings = lint_snippet(
        "import time\n"
        "def f():\n"
        "    return time.perf_counter()\n"
    )
    assert codes(findings) == ["DET001"]
    assert findings[0].line == 3
    assert "perf_counter" in findings[0].message


def test_det001_flags_from_import_alias(lint_snippet):
    findings = lint_snippet(
        "from time import monotonic as mono\n"
        "t = mono()\n"
    )
    assert codes(findings) == ["DET001"]


def test_det001_suppressed_by_pragma(lint_snippet):
    findings = lint_snippet(
        "import time\n"
        "t = time.time()  # repro: allow[DET001]\n"
    )
    assert findings == []


def test_det001_exempt_in_clock_shim(lint_snippet):
    findings = lint_snippet(
        "import time\n"
        "def perf_counter():\n"
        "    return time.perf_counter()\n",
        rel="harness/clock.py",
    )
    assert findings == []


# -- DET002: entropy ---------------------------------------------------------


def test_det002_flags_urandom_and_uuid4(lint_snippet):
    findings = lint_snippet(
        "import os\n"
        "import uuid\n"
        "a = os.urandom(8)\n"
        "b = uuid.uuid4()\n"
    )
    assert codes(findings) == ["DET002", "DET002"]


def test_det002_family_pragma_covers_code(lint_snippet):
    findings = lint_snippet(
        "import os\n"
        "a = os.urandom(8)  # repro: allow[DET]\n"
    )
    assert findings == []


# -- DET003: RNG discipline --------------------------------------------------


def test_det003_flags_global_random(lint_snippet):
    findings = lint_snippet(
        "import random\n"
        "x = random.random()\n"
    )
    assert codes(findings) == ["DET003"]


def test_det003_exempt_in_rng_home(lint_snippet):
    findings = lint_snippet(
        "import random\n"
        "def make(seed):\n"
        "    return random.Random(seed)\n",
        rel="sim/rng.py",
    )
    assert findings == []


# -- DET004: set-iteration order ---------------------------------------------


def test_det004_flags_loop_over_set(lint_snippet):
    findings = lint_snippet(
        "def f():\n"
        "    owners = {1, 2, 3}\n"
        "    out = []\n"
        "    for o in owners:\n"
        "        out.append(o)\n"
        "    return out\n"
    )
    assert codes(findings) == ["DET004"]
    assert findings[0].line == 4


def test_det004_sorted_sanctions_iteration(lint_snippet):
    findings = lint_snippet(
        "def f():\n"
        "    owners = {1, 2, 3}\n"
        "    return [o for o in sorted(owners)]\n"
    )
    assert findings == []


def test_det004_standalone_pragma_covers_next_line(lint_snippet):
    findings = lint_snippet(
        "def f():\n"
        "    owners = {1, 2, 3}\n"
        "    # repro: allow[DET004]\n"
        "    return list(owners)\n"
    )
    assert findings == []


# -- LAYER001: import matrix -------------------------------------------------


def test_layer001_kernel_must_not_import_harness(lint_snippet):
    findings = lint_snippet(
        "from repro.harness import runner\n",
        rel="core/manager_ext.py",
    )
    assert codes(findings) == ["LAYER001"]
    assert "repro.harness" in findings[0].message


def test_layer001_harness_may_import_anything(lint_snippet):
    findings = lint_snippet(
        "from repro.harness import runner\n"
        "from repro.faults import chaos\n",
        rel="harness/extra.py",
    )
    assert findings == []


def test_layer001_type_checking_imports_exempt(lint_snippet):
    findings = lint_snippet(
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from repro.harness import runner\n",
        rel="sim/typing_only.py",
    )
    assert findings == []


# -- LAYER002: numpy stays out of the scalar DES core ------------------------


def test_layer002_sim_core_must_not_import_numpy(lint_snippet):
    findings = lint_snippet(
        "import numpy as np\n",
        rel="sim/fastpath.py",
    )
    assert codes(findings) == ["LAYER002"]
    assert "scalar" in findings[0].message


def test_layer002_numpy_submodule_counts(lint_snippet):
    findings = lint_snippet(
        "from numpy.random import Generator\n",
        rel="sim/fastpath.py",
    )
    assert codes(findings) == ["LAYER002"]


def test_layer002_sim_rng_is_exempt(lint_snippet):
    findings = lint_snippet(
        "import numpy as np\n",
        rel="sim/rng.py",
    )
    assert findings == []


def test_layer002_workloads_and_power_are_sanctioned(lint_snippet):
    for rel in ("workloads/vectors.py", "power/vectors.py"):
        findings = lint_snippet("import numpy as np\n", rel=rel)
        assert findings == [], rel


# -- PURE: kernel purity -----------------------------------------------------


def test_pure001_flags_kernel_file_io(lint_snippet):
    findings = lint_snippet(
        "def dump(path, data):\n"
        "    with open(path, 'w') as fh:\n"
        "        fh.write(data)\n",
        rel="buffers/dumper.py",
    )
    assert codes(findings) == ["PURE001"]


def test_pure001_harness_io_is_fine(lint_snippet):
    findings = lint_snippet(
        "def dump(path, data):\n"
        "    with open(path, 'w') as fh:\n"
        "        fh.write(data)\n",
        rel="harness/dumper.py",
    )
    assert findings == []


def test_pure002_flags_kernel_threading(lint_snippet):
    findings = lint_snippet(
        "import threading\n",
        rel="cpu/spinner.py",
    )
    assert codes(findings) == ["PURE002"]


def test_pure003_flags_environ_everywhere(lint_snippet):
    findings = lint_snippet(
        "import os\n"
        "jobs = os.environ.get('REPRO_JOBS')\n",
        rel="harness/settings.py",
    )
    assert codes(findings) == ["PURE003"]


def test_pure003_exempt_in_params(lint_snippet):
    findings = lint_snippet(
        "import os\n"
        "jobs = os.environ.get('REPRO_JOBS')\n",
        rel="harness/params.py",
    )
    assert findings == []


# -- TRACE001: registered names ----------------------------------------------


def test_trace001_flags_unregistered_name(lint_snippet):
    findings = lint_snippet(
        "def emit(tracer):\n"
        "    tracer.instant('core0', 'bogus.name')\n",
        rel="core/emitter.py",
    )
    assert codes(findings) == ["TRACE001"]
    assert "bogus.name" in findings[0].message


def test_trace001_registered_name_is_clean(lint_snippet):
    findings = lint_snippet(
        "def emit(tracer):\n"
        "    tracer.instant('core0', 'slot')\n"
        "    tracer.counter('core0', 'power_w', 1.0)\n",
        rel="core/emitter.py",
    )
    assert findings == []


def test_trace001_dynamic_names_not_flagged(lint_snippet):
    findings = lint_snippet(
        "def emit(tracer, label):\n"
        "    tracer.instant('core0', label)\n",
        rel="core/emitter.py",
    )
    assert findings == []


def test_trace001_suppressed_by_pragma(lint_snippet):
    findings = lint_snippet(
        "def emit(tracer):\n"
        "    tracer.instant('c', 'adhoc')  # repro: allow[TRACE001]\n",
        rel="core/emitter.py",
    )
    assert findings == []
