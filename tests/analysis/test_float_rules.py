"""FLOAT001: order-sensitive float accumulation in the numeric layers."""


def _float(findings):
    return [f for f in findings if f.code == "FLOAT001"]


def test_sum_over_set_literal_flagged(lint_snippet):
    findings = lint_snippet(
        "def total(xs):\n"
        "    return sum({x * 2.0 for x in xs})"
        "  # repro: allow[DET004] -- exercising FLOAT001\n",
        rel="power/acc.py",
    )
    assert len(_float(findings)) == 1


def test_sum_over_genexp_over_set_variable_flagged(lint_snippet):
    findings = lint_snippet(
        "def total(readings):\n"
        "    live = set(readings)\n"
        "    return sum(r.joules for r in live)"
        "  # repro: allow[DET004] -- exercising FLOAT001\n",
        rel="metrics/acc.py",
    )
    assert len(_float(findings)) == 1


def test_sum_over_sorted_clean(lint_snippet):
    findings = lint_snippet(
        "def total(readings):\n"
        "    live = set(readings)\n"
        "    return sum(sorted(r.joules for r in live))\n",
        rel="power/acc.py",
    )
    assert _float(findings) == []


def test_fsum_exempt(lint_snippet):
    findings = lint_snippet(
        "import math\n"
        "\n"
        "\n"
        "def total(readings):\n"
        "    live = set(readings)\n"
        "    return math.fsum(r.joules for r in live)"
        "  # repro: allow[DET004] -- fsum is order-independent\n",
        rel="power/acc.py",
    )
    assert _float(findings) == []


def test_outside_numeric_layers_not_flagged(lint_snippet):
    findings = lint_snippet(
        "def total(xs):\n"
        "    return sum({x * 2.0 for x in xs})"
        "  # repro: allow[DET004] -- not a numeric layer\n",
        rel="harness/acc.py",
    )
    assert _float(findings) == []
