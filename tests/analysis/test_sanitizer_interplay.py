"""Static SCHED001 and the dynamic sanitizer agree on the hazard site.

The ISSUE's acceptance demo: one fixture whose priority-less
absolute-boundary ``schedule()`` is (a) flagged statically as SCHED001
and (b) produces a runtime :class:`SimultaneityRace` under the
sanitizer — and both reports name the *same* file:line call site.
"""

from pathlib import Path

from repro.analysis.engine import analyze

from tests.analysis import fixture_race

FIXTURE = Path(fixture_race.__file__)


def _static_sched001():
    result = analyze([FIXTURE])
    assert result.errors == []
    findings = [f for f in result.findings if f.code == "SCHED001"]
    assert len(findings) == 1, findings
    return findings[0]


def test_static_flags_the_aim_site():
    finding = _static_sched001()
    source_line = FIXTURE.read_text(encoding="utf-8").splitlines()[
        finding.line - 1
    ]
    assert "env.schedule" in source_line and "BOUNDARY_S - env.now" in source_line
    assert "absolute" in finding.message


def test_dynamic_race_fires_on_the_same_buffer():
    report = fixture_race.run_race()
    assert not report.ok
    assert len(report.races) == 1
    race = report.races[0]
    assert race.time_s == fixture_race.BOUNDARY_S
    assert race.state.startswith("BoundedBuffer")
    assert race.site_a == race.site_b  # both ticks routed through aim()


def test_static_and_dynamic_name_the_same_call_site():
    finding = _static_sched001()
    report = fixture_race.run_race()
    assert not report.ok
    expected = (
        f"tests/analysis/fixture_race.py:{finding.line}"
        f" in {fixture_race.HAZARD_FUNC}"
    )
    assert report.races[0].site_a == expected
    assert report.races[0].site_b == expected
