"""Property-based tests: all buffers behave as bounded FIFOs; the pool
never over-commits."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.buffers import (
    BoundedBuffer,
    GlobalBufferPool,
    RingBuffer,
    SegmentedBuffer,
)

# Op streams: True = push (with a counter value), False = pop.
ops_strategy = st.lists(st.booleans(), max_size=200)


def run_fifo_model(buf, ops):
    """Drive ``buf`` against a list model; returns False on divergence."""
    model = []
    next_val = 0
    for is_push in ops:
        if is_push:
            ok = buf.try_push(next_val)
            assert ok == (len(model) < buf.capacity)
            if ok:
                model.append(next_val)
            next_val += 1
        else:
            if model:
                assert buf.pop() == model.pop(0)
            else:
                assert buf.is_empty
        assert len(buf) == len(model)
        assert buf.is_empty == (not model)
        assert buf.is_full == (len(model) == buf.capacity)
    assert list(buf) == model


@given(capacity=st.integers(1, 20), ops=ops_strategy)
@settings(max_examples=200, deadline=None)
def test_ring_buffer_matches_fifo_model(capacity, ops):
    run_fifo_model(RingBuffer(capacity), ops)


@given(capacity=st.integers(1, 20), ops=ops_strategy)
@settings(max_examples=200, deadline=None)
def test_bounded_buffer_matches_fifo_model(capacity, ops):
    run_fifo_model(BoundedBuffer(capacity), ops)


@given(
    capacity=st.integers(1, 20),
    segment=st.integers(1, 7),
    ops=ops_strategy,
)
@settings(max_examples=200, deadline=None)
def test_segmented_buffer_matches_fifo_model(capacity, segment, ops):
    run_fifo_model(SegmentedBuffer(capacity, segment_size=segment), ops)


@given(
    capacity=st.integers(2, 30),
    segment=st.integers(1, 5),
    data=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_segmented_buffer_fifo_survives_resizing(capacity, segment, data):
    buf = SegmentedBuffer(capacity, segment_size=segment)
    model = []
    next_val = 0
    for _ in range(data.draw(st.integers(0, 80))):
        action = data.draw(st.sampled_from(["push", "pop", "grow", "shrink"]))
        if action == "push":
            if buf.try_push(next_val):
                model.append(next_val)
            next_val += 1
        elif action == "pop" and model:
            assert buf.pop() == model.pop(0)
        elif action == "grow":
            buf.grow(data.draw(st.integers(0, 10)))
        elif action == "shrink":
            buf.shrink(data.draw(st.integers(0, 10)))
        assert buf.capacity >= max(1, len(model))
        assert len(buf) == len(model)
    assert buf.drain() == model


class PoolMachine(RuleBasedStateMachine):
    """Stateful test: the pool's entitlement invariant under churn."""

    @initialize(
        base=st.integers(5, 40),
        consumers=st.integers(1, 6),
    )
    def setup(self, base, consumers):
        self.pool = GlobalBufferPool(base, consumers)
        self.ids = [f"c{i}" for i in range(consumers)]
        for cid in self.ids:
            self.pool.register(cid)

    @rule(idx=st.integers(0, 5), target_cap=st.integers(1, 200))
    def downsize(self, idx, target_cap):
        cid = self.ids[idx % len(self.ids)]
        self.pool.downsize(cid, target_cap)

    @rule(idx=st.integers(0, 5), desired=st.integers(1, 400))
    def upsize(self, idx, desired):
        cid = self.ids[idx % len(self.ids)]
        self.pool.upsize(cid, desired)

    @rule(idx=st.integers(0, 5), n=st.integers(1, 30))
    def push_items(self, idx, n):
        cid = self.ids[idx % len(self.ids)]
        buf = self.pool.buffer(cid)
        for i in range(n):
            if not buf.try_push(i):
                break

    @rule(idx=st.integers(0, 5))
    def drain(self, idx):
        cid = self.ids[idx % len(self.ids)]
        self.pool.buffer(cid).drain()

    @rule(idx=st.integers(0, 5))
    def release(self, idx):
        cid = self.ids[idx % len(self.ids)]
        self.pool.release_to_base(cid)

    @invariant()
    def never_overcommitted(self):
        if hasattr(self, "pool"):
            self.pool.check_invariant()

    @invariant()
    def buffers_within_entitlement(self):
        if hasattr(self, "pool"):
            for cid in self.ids:
                buf = self.pool.buffer(cid)
                assert len(buf) <= buf.capacity


TestPoolStateMachine = PoolMachine.TestCase
