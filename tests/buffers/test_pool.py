"""Unit tests for the global buffer pool (dynamic resizing, paper §V-C)."""

import pytest

from repro.buffers import GlobalBufferPool


def test_register_gives_base_allocation():
    pool = GlobalBufferPool(base_allocation=25, n_consumers=4)
    buf = pool.register("c1")
    assert buf.capacity == 25
    assert pool.total_slots == 100


def test_duplicate_registration_rejected():
    pool = GlobalBufferPool(25, 2)
    pool.register("c1")
    with pytest.raises(ValueError):
        pool.register("c1")


def test_registration_beyond_sizing_rejected():
    pool = GlobalBufferPool(25, 1)
    pool.register("c1")
    with pytest.raises(ValueError):
        pool.register("c2")


def test_free_slots_reserve_unregistered_shares():
    pool = GlobalBufferPool(25, 4)
    pool.register("c1")
    # 3 unregistered consumers' shares (75) are reserved; c1 holds 25.
    assert pool.free_slots == 0
    pool.register("c2")
    pool.downsize("c2", 5)
    assert pool.free_slots == 20


def test_downsize_frees_pool_space():
    pool = GlobalBufferPool(25, 2)
    pool.register("c1")
    pool.register("c2")
    assert pool.free_slots == 0
    assert pool.downsize("c1", 10) == 10
    assert pool.free_slots == 15


def test_downsize_never_grows():
    pool = GlobalBufferPool(25, 2)
    pool.register("c1")
    pool.register("c2")
    assert pool.downsize("c1", 100) == 25


def test_downsize_clamps_to_occupancy():
    pool = GlobalBufferPool(25, 1)
    buf = pool.register("c1")
    for i in range(12):
        buf.push(i)
    assert pool.downsize("c1", 3) == 12


def test_upsize_takes_min_of_free_and_desired():
    pool = GlobalBufferPool(25, 2)
    pool.register("c1")
    pool.register("c2")
    pool.downsize("c1", 10)  # 15 slots free
    # c2 wants 100 total; only 15 free → 25 + 15 = 40
    assert pool.upsize("c2", 100) == 40
    assert pool.free_slots == 0


def test_upsize_fully_granted_when_space_allows():
    pool = GlobalBufferPool(25, 2)
    pool.register("c1")
    pool.register("c2")
    pool.downsize("c1", 5)
    assert pool.upsize("c2", 35) == 35
    assert pool.free_slots == 10


def test_upsize_with_exhausted_pool_is_noop():
    pool = GlobalBufferPool(25, 2)
    pool.register("c1")
    pool.register("c2")
    assert pool.upsize("c1", 50) == 25
    assert pool.upsize_requests == 1
    assert pool.upsize_grants == 0


def test_upsize_below_current_capacity_is_noop():
    pool = GlobalBufferPool(25, 1)
    pool.register("c1")
    assert pool.upsize("c1", 10) == 25


def test_release_to_base_returns_borrowed_slots():
    pool = GlobalBufferPool(25, 2)
    pool.register("c1")
    pool.register("c2")
    pool.downsize("c1", 5)
    pool.upsize("c2", 45)
    assert pool.buffer("c2").capacity == 45
    pool.release_to_base("c2")
    assert pool.buffer("c2").capacity == 25


def test_lending_statistics():
    pool = GlobalBufferPool(25, 2)
    pool.register("c1")
    pool.register("c2")
    pool.downsize("c1", 10)
    pool.upsize("c2", 30)
    assert pool.upsize_requests == 1
    assert pool.upsize_grants == 1
    assert pool.slots_lent == 5


def test_average_capacity():
    pool = GlobalBufferPool(20, 2)
    assert pool.average_capacity() == 0.0
    pool.register("c1")
    pool.register("c2")
    pool.downsize("c1", 10)
    assert pool.average_capacity() == pytest.approx(15.0)


def test_invariant_holds_through_churn():
    pool = GlobalBufferPool(25, 3)
    for cid in ("a", "b", "c"):
        pool.register(cid)
    pool.downsize("a", 3)
    pool.upsize("b", 60)
    pool.downsize("b", 12)
    pool.upsize("c", 999)
    pool.release_to_base("c")
    pool.check_invariant()
    assert pool.allocated_slots <= pool.total_slots


def test_pool_validation():
    with pytest.raises(ValueError):
        GlobalBufferPool(0, 2)
    with pytest.raises(ValueError):
        GlobalBufferPool(25, 0)
