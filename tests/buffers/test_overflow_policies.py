"""Overflow degradation policies — uniform across all three substrates."""

import pytest

from repro.buffers import (
    BoundedBuffer,
    BufferOverflow,
    OVERFLOW_POLICIES,
    RingBuffer,
    SegmentedBuffer,
)

SUBSTRATES = (RingBuffer, BoundedBuffer, SegmentedBuffer)


@pytest.fixture(params=SUBSTRATES, ids=lambda cls: cls.__name__)
def substrate(request):
    return request.param


def full_buffer(cls, capacity=3, **kwargs):
    buf = cls(capacity, **kwargs)
    for i in range(capacity):
        buf.push(i)
    return buf


# -- unified accounting (satellite: one semantics for `overflows`) ---------------


def test_block_push_raises_and_counts_each_encounter(substrate):
    buf = full_buffer(substrate)
    for _ in range(2):
        with pytest.raises(BufferOverflow):
            buf.push(99)
    assert buf.overflows == 2
    assert buf.items_dropped == 0
    assert buf.pushes == 3  # the rejected items never counted as pushes


def test_block_try_push_returns_false_and_counts(substrate):
    buf = full_buffer(substrate)
    assert buf.try_push(99) is False
    assert buf.overflows == 1
    assert list(iter_drain(buf)) == [0, 1, 2]


def test_successful_push_never_counts_an_overflow(substrate):
    buf = substrate(3)
    buf.push(0)
    assert buf.overflows == 0


def test_unknown_policy_rejected(substrate):
    with pytest.raises(ValueError, match="unknown overflow policy"):
        substrate(3, policy="yolo")


def test_shed_policy_requires_age_and_clock(substrate):
    with pytest.raises(ValueError, match="max_item_age_s"):
        substrate(3, policy="shed-to-deadline")
    with pytest.raises(ValueError, match="clock"):
        substrate(3, policy="shed-to-deadline", max_item_age_s=1.0)


def iter_drain(buf):
    while not buf.is_empty:
        yield buf.pop()


# -- drop-oldest ----------------------------------------------------------------


def test_drop_oldest_keeps_the_newest_items(substrate):
    buf = full_buffer(substrate, policy="drop-oldest")
    assert buf.push(3) is True
    assert buf.push(4) is True
    assert buf.overflows == 2
    assert buf.dropped_oldest == 2
    assert buf.items_dropped == 2
    assert list(iter_drain(buf)) == [2, 3, 4]
    # Evictions are not consumer pops; only the drain above counted.
    assert buf.pops == 3


def test_drop_oldest_counts_admitted_items_as_pushes(substrate):
    buf = full_buffer(substrate, policy="drop-oldest")
    buf.push(3)
    assert buf.pushes == 4  # conservation: pushes == consumed+dropped+left


# -- drop-newest ----------------------------------------------------------------


def test_drop_newest_discards_the_incoming_item(substrate):
    buf = full_buffer(substrate, policy="drop-newest")
    assert buf.push(99) is False
    assert buf.overflows == 1
    assert buf.dropped_newest == 1
    assert buf.pushes == 3
    assert list(iter_drain(buf)) == [0, 1, 2]


# -- shed-to-deadline ------------------------------------------------------------


def test_shed_evicts_only_past_deadline_items(substrate):
    clock = {"now": 0.0}
    buf = substrate(
        3, policy="shed-to-deadline", max_item_age_s=1.0, clock=lambda: clock["now"]
    )
    for t in (0.0, 0.5, 2.0):  # items carry their production time
        buf.push(t)
    clock["now"] = 2.1  # items 0.0 and 0.5 are now past deadline
    assert buf.push(2.1) is True
    assert buf.shed == 2
    assert buf.dropped_newest == 0
    assert list(iter_drain(buf)) == [2.0, 2.1]


def test_shed_falls_back_to_drop_newest_when_nothing_is_stale(substrate):
    clock = {"now": 0.0}
    buf = substrate(
        3, policy="shed-to-deadline", max_item_age_s=10.0, clock=lambda: clock["now"]
    )
    for t in (0.0, 0.1, 0.2):
        buf.push(t)
    clock["now"] = 0.3  # everything still fresh
    assert buf.push(0.3) is False
    assert buf.shed == 0
    assert buf.dropped_newest == 1
    assert buf.overflows == 1


def test_conservation_holds_under_every_policy(substrate):
    for policy in OVERFLOW_POLICIES:
        kwargs = {}
        if policy == "shed-to-deadline":
            kwargs = dict(max_item_age_s=0.5, clock=lambda: 100.0)
        buf = substrate(4, policy=policy, **kwargs)
        admitted = 0
        for i in range(12):
            try:
                admitted += buf.push(float(i))
            except BufferOverflow:
                pass
        consumed = len(list(iter_drain(buf)))
        assert admitted == buf.pushes
        assert buf.pushes == consumed + buf.dropped_oldest + buf.shed
        assert buf.pops == consumed


def test_segmented_buffer_reclaims_segments_on_eviction():
    buf = SegmentedBuffer(8, segment_size=2, policy="drop-oldest")
    for i in range(8):
        buf.push(i)
    for i in range(8, 14):
        buf.push(i)  # six evictions → head segments reclaimed
    assert list(iter_drain(buf)) == [6, 7, 8, 9, 10, 11, 12, 13]
    assert buf.dropped_oldest == 6
