"""Unit tests for BoundedBuffer and SegmentedBuffer."""

import pytest

from repro.buffers import (
    BoundedBuffer,
    BufferOverflow,
    BufferUnderflow,
    SegmentedBuffer,
)


# -- BoundedBuffer ----------------------------------------------------------


def test_bounded_fifo_and_count():
    buf = BoundedBuffer(3)
    buf.push(1)
    buf.push(2)
    assert buf.count == 2
    assert buf.pop() == 1
    assert buf.count == 1


def test_bounded_overflow_and_underflow():
    buf = BoundedBuffer(1)
    buf.push(1)
    with pytest.raises(BufferOverflow):
        buf.push(2)
    buf.pop()
    with pytest.raises(BufferUnderflow):
        buf.pop()


def test_bounded_drain_and_iter():
    buf = BoundedBuffer(5)
    for i in range(4):
        buf.push(i)
    assert list(buf) == [0, 1, 2, 3]
    assert buf.drain(3) == [0, 1, 2]
    assert buf.drain() == [3]


def test_bounded_peek():
    buf = BoundedBuffer(2)
    buf.push("x")
    assert buf.peek() == "x"
    assert buf.count == 1


def test_bounded_invalid_capacity():
    with pytest.raises(ValueError):
        BoundedBuffer(0)


# -- SegmentedBuffer -------------------------------------------------------------


def test_segmented_fifo_across_segment_boundaries():
    buf = SegmentedBuffer(100, segment_size=4)
    for i in range(50):
        buf.push(i)
    assert [buf.pop() for _ in range(50)] == list(range(50))


def test_segmented_overflow_at_capacity():
    buf = SegmentedBuffer(2)
    buf.push(1)
    buf.push(2)
    with pytest.raises(BufferOverflow):
        buf.push(3)
    assert buf.overflows == 1


def test_segmented_grow_admits_more():
    buf = SegmentedBuffer(2)
    buf.push(1)
    buf.push(2)
    assert buf.grow(2) == 4
    buf.push(3)
    buf.push(4)
    assert buf.is_full


def test_segmented_shrink_releases_capacity():
    buf = SegmentedBuffer(10)
    assert buf.shrink(4) == 6
    assert buf.capacity == 6


def test_segmented_shrink_clamps_to_occupancy():
    buf = SegmentedBuffer(10)
    for i in range(7):
        buf.push(i)
    assert buf.set_capacity(3) == 7  # cannot discard buffered items
    assert len(buf) == 7


def test_segmented_shrink_floor_is_one():
    buf = SegmentedBuffer(5)
    assert buf.shrink(100) == 1


def test_segmented_resize_events_recorded():
    buf = SegmentedBuffer(10)
    buf.grow(5)
    buf.shrink(3)
    assert buf.resize_events == [(10, 15), (15, 12)]


def test_segmented_interleaved_push_pop_resize():
    buf = SegmentedBuffer(4, segment_size=2)
    buf.push("a")
    buf.push("b")
    assert buf.pop() == "a"
    buf.set_capacity(3)  # holds "b", room for 2 more
    buf.push("c")
    assert not buf.is_full
    buf.push("d")
    assert buf.is_full
    assert buf.drain() == ["b", "c", "d"]


def test_segmented_drain_limit():
    buf = SegmentedBuffer(10)
    for i in range(6):
        buf.push(i)
    assert buf.drain(4) == [0, 1, 2, 3]
    assert len(buf) == 2


def test_segmented_peek_and_iter():
    buf = SegmentedBuffer(10, segment_size=2)
    for i in range(5):
        buf.push(i)
    buf.pop()
    buf.pop()
    assert buf.peek() == 2
    assert list(buf) == [2, 3, 4]


def test_segmented_validation():
    with pytest.raises(ValueError):
        SegmentedBuffer(0)
    with pytest.raises(ValueError):
        SegmentedBuffer(5, segment_size=0)
    buf = SegmentedBuffer(5)
    with pytest.raises(ValueError):
        buf.set_capacity(0)
    with pytest.raises(ValueError):
        buf.grow(-1)
    with pytest.raises(ValueError):
        buf.shrink(-1)


def test_segmented_memory_reclaim_keeps_length_consistent():
    """The amortised segment recycling must not corrupt indexing."""
    buf = SegmentedBuffer(1000, segment_size=3)
    expected = []
    for i in range(300):
        buf.push(i)
        expected.append(i)
        if i % 2 == 0:
            assert buf.pop() == expected.pop(0)
    assert list(buf) == expected
    assert len(buf) == len(expected)
