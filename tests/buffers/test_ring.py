"""Unit tests for the circular buffer."""

import pytest

from repro.buffers import BufferOverflow, BufferUnderflow, RingBuffer


def test_new_buffer_is_empty():
    buf = RingBuffer(4)
    assert buf.is_empty
    assert not buf.is_full
    assert len(buf) == 0
    assert buf.capacity == 4
    assert buf.free == 4


def test_push_pop_fifo():
    buf = RingBuffer(3)
    buf.push("a")
    buf.push("b")
    buf.push("c")
    assert [buf.pop(), buf.pop(), buf.pop()] == ["a", "b", "c"]


def test_push_full_raises_and_counts_overflow():
    buf = RingBuffer(2)
    buf.push(1)
    buf.push(2)
    with pytest.raises(BufferOverflow):
        buf.push(3)
    assert buf.overflows == 1


def test_try_push_returns_false_when_full():
    buf = RingBuffer(1)
    assert buf.try_push(1)
    assert not buf.try_push(2)
    assert buf.overflows == 1


def test_pop_empty_raises():
    with pytest.raises(BufferUnderflow):
        RingBuffer(1).pop()


def test_peek_does_not_consume():
    buf = RingBuffer(2)
    buf.push("x")
    assert buf.peek() == "x"
    assert len(buf) == 1
    assert buf.pop() == "x"


def test_peek_empty_raises():
    with pytest.raises(BufferUnderflow):
        RingBuffer(1).peek()


def test_wraparound_preserves_order():
    buf = RingBuffer(3)
    for i in range(3):
        buf.push(i)
    assert buf.pop() == 0
    buf.push(3)  # wraps tail
    assert [buf.pop() for _ in range(3)] == [1, 2, 3]


def test_capacity_n_holds_n_items():
    buf = RingBuffer(5)
    for i in range(5):
        buf.push(i)
    assert buf.is_full
    assert len(buf) == 5


def test_drain_all():
    buf = RingBuffer(4)
    for i in range(4):
        buf.push(i)
    assert buf.drain() == [0, 1, 2, 3]
    assert buf.is_empty


def test_drain_with_limit():
    buf = RingBuffer(4)
    for i in range(4):
        buf.push(i)
    assert buf.drain(2) == [0, 1]
    assert len(buf) == 2


def test_iteration_oldest_to_newest_nonconsuming():
    buf = RingBuffer(4)
    for i in range(3):
        buf.push(i)
    buf.pop()
    buf.push(3)
    assert list(buf) == [1, 2, 3]
    assert len(buf) == 3


def test_operation_counters():
    buf = RingBuffer(2)
    buf.push(1)
    buf.push(2)
    buf.pop()
    buf.try_push(3)
    buf.try_push(4)  # overflow
    assert buf.pushes == 3
    assert buf.pops == 1
    assert buf.overflows == 1


def test_invalid_capacity():
    with pytest.raises(ValueError):
        RingBuffer(0)
