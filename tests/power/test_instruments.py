"""Unit tests for the PowerTop analogue and the oscilloscope rig."""

import numpy as np
import pytest

from repro.cpu import CState, CStateTable, Core, PState, PStateTable
from repro.power import EnergyLedger, Oscilloscope, PowerModel, PowerTop
from repro.sim import Environment


def make_rig(**model_kwargs):
    env = Environment()
    cstates = CStateTable(
        [CState("C1", 1, power_w=0.1, exit_latency_s=0.0, min_residency_s=0.0)]
    )
    pstates = PStateTable([PState("p", 1e9, 1.0)])
    core = Core(env, 0, cstates, pstates, context_switch_s=0.0)
    model = PowerModel(
        capacitance_f=1e-9, static_active_w=0.0, wakeup_energy_j=0.0, **model_kwargs
    )
    ledger = EnergyLedger(env, model)
    core.add_listener(ledger)
    ledger.watch(core)
    return env, core, model, ledger


# -- PowerTop -----------------------------------------------------------------


def test_powertop_counts_task_wakeups_and_usage():
    env, core, model, ledger = make_rig()
    top = PowerTop(env)
    core.add_listener(top)

    def task(env):
        for _ in range(10):
            yield env.timeout(0.5)
            yield from core.execute("consumer", 0.1, after_block=True)

    env.process(task(env))
    env.run(until=10.0)
    report = top.report()
    row = report.row("consumer")
    assert row.wakeups_per_s == pytest.approx(1.0)  # 10 wakeups / 10 s
    assert row.usage_ms_per_s == pytest.approx(100.0)  # 1 s busy / 10 s


def test_powertop_spinner_has_usage_but_no_wakeups():
    env, core, model, ledger = make_rig()
    top = PowerTop(env)
    core.add_listener(top)

    def spinner(env):
        while True:
            yield from core.execute("spin", 0.01, after_block=False)

    env.process(spinner(env))
    env.run(until=5.0)
    report = top.report()
    row = report.row("spin")
    assert row.wakeups_per_s == 0.0
    assert row.usage_ms_per_s == pytest.approx(1000.0, rel=0.01)


def test_powertop_separates_owners():
    env, core, model, ledger = make_rig()
    top = PowerTop(env)
    core.add_listener(top)

    def task(env, owner, n):
        for _ in range(n):
            yield env.timeout(1.0)
            yield from core.execute(owner, 0.01, after_block=True)

    env.process(task(env, "a", 3))
    env.process(task(env, "b", 6))
    env.run(until=10.0)
    report = top.report()
    assert report.row("a").wakeups_per_s == pytest.approx(0.3)
    assert report.row("b").wakeups_per_s == pytest.approx(0.6)
    assert report.total_wakeups_per_s == pytest.approx(0.9)


def test_powertop_core_wakeups_counted():
    env, core, model, ledger = make_rig()
    top = PowerTop(env)
    core.add_listener(top)

    def task(env):
        for _ in range(5):
            yield env.timeout(1.0)
            yield from core.execute("t", 0.01, after_block=True)

    env.process(task(env))
    env.run(until=10.0)
    assert top.report().core_wakeups_per_s == pytest.approx(0.5)


def test_powertop_reset_starts_new_window():
    env, core, model, ledger = make_rig()
    top = PowerTop(env)
    core.add_listener(top)

    def task(env):
        yield env.timeout(1.0)
        yield from core.execute("t", 0.01, after_block=True)

    env.process(task(env))
    env.run(until=5.0)
    top.reset()
    env.run(until=10.0)
    assert top.report().row("t").wakeups_per_s == 0.0


def test_powertop_empty_window_rejected():
    env, core, model, ledger = make_rig()
    top = PowerTop(env)
    with pytest.raises(ValueError):
        top.report()


def test_powertop_unknown_owner_row_is_zero():
    env, core, model, ledger = make_rig()
    top = PowerTop(env)
    env.run(until=1.0)
    row = top.report().row("ghost")
    assert row.wakeups_per_s == 0.0 and row.usage_ms_per_s == 0.0


# -- Oscilloscope -----------------------------------------------------------


def scope_for(env, ledger, model, noise_std_v=0.0, seed=1):
    return Oscilloscope(
        env,
        ledger,
        model,
        np.random.default_rng(seed),
        shunt_ohm=0.1,
        sample_rate_hz=1000.0,
        noise_std_v=noise_std_v,
    )


def test_scope_noiseless_measurement_matches_ledger():
    env, core, model, ledger = make_rig()
    scope = scope_for(env, ledger, model)
    out = []

    def task(env):
        yield from core.execute("t", 2.0)

    def measure(env):
        m = yield from scope.measure(10.0)
        out.append(m)

    env.process(task(env))
    env.process(measure(env))
    env.run()
    m = out[0]
    expected = (2.0 * 1.0 + 8.0 * 0.1) / 10.0
    assert m.true_w == pytest.approx(expected)
    assert m.measured_w == pytest.approx(expected)


def test_scope_observe_windows_bitwise_matches_sequential():
    """The vectorized batch draw consumes the RNG bit stream exactly
    like the scalar per-window loop — every field byte-identical."""
    env, core, model, ledger = make_rig()
    true_ws = np.linspace(0.5, 3.0, 37)
    batch = scope_for(env, ledger, model, noise_std_v=2e-3, seed=11)
    seq = scope_for(env, ledger, model, noise_std_v=2e-3, seed=11)
    got = batch.observe_windows(true_ws, 0.25)
    want = [seq.observe_window(w, 0.25) for w in true_ws.tolist()]
    assert len(got) == len(want) == 37
    for g, w in zip(got, want):
        assert g == w  # dataclass equality: all five fields, bitwise
    # And the two generators end in the same state.
    next_batch = float(batch.rng.normal())
    next_seq = float(seq.rng.normal())
    assert next_batch == next_seq


def test_scope_observe_windows_empty_input():
    env, core, model, ledger = make_rig()
    scope = scope_for(env, ledger, model, noise_std_v=2e-3, seed=3)
    assert scope.observe_windows(np.empty(0), 0.5) == []


def test_scope_noise_shrinks_with_window_length():
    env, core, model, ledger = make_rig()
    scope = scope_for(env, ledger, model, noise_std_v=1e-2, seed=7)
    short = [abs(scope.observe_window(1.0, 0.1).measured_w - 1.0) for _ in range(200)]
    long = [abs(scope.observe_window(1.0, 10.0).measured_w - 1.0) for _ in range(200)]
    assert np.mean(long) < np.mean(short)


def test_scope_measurement_is_unbiased():
    env, core, model, ledger = make_rig()
    scope = scope_for(env, ledger, model, noise_std_v=5e-3, seed=11)
    errs = [scope.observe_window(2.0, 1.0).measured_w - 2.0 for _ in range(500)]
    assert abs(np.mean(errs)) < 3 * np.std(errs) / np.sqrt(len(errs)) + 1e-6


def test_scope_voltage_drop_physics():
    env, core, model, ledger = make_rig()
    scope = scope_for(env, ledger, model)
    m = scope.observe_window(5.0, 1.0)  # 5 W at 5 V through 0.1 Ω
    assert m.v_drop_v == pytest.approx(5.0 * 0.1 / 5.0)  # I=1A → 0.1V


def test_scope_resistor_formula_is_v_squared_over_r():
    env, core, model, ledger = make_rig()
    scope = scope_for(env, ledger, model)
    assert scope.resistor_formula_power_w(0.2) == pytest.approx(0.4)


def test_scope_rejects_bad_parameters():
    env, core, model, ledger = make_rig()
    with pytest.raises(ValueError):
        Oscilloscope(env, ledger, model, np.random.default_rng(0), shunt_ohm=0.0)
    scope = scope_for(env, ledger, model)
    with pytest.raises(ValueError):
        next(iter(scope.measure(0.0)))


def test_scope_includes_wakeup_energy_in_window():
    """Unlike naive sampling, the rig integrates ω spikes (real scopes do)."""
    env = Environment()
    cstates = CStateTable(
        [CState("C1", 1, power_w=0.0, exit_latency_s=0.0, min_residency_s=0.0)]
    )
    pstates = PStateTable([PState("p", 1e9, 1.0)])
    core = Core(env, 0, cstates, pstates, context_switch_s=0.0)
    model = PowerModel(capacitance_f=1e-9, static_active_w=0.0, wakeup_energy_j=0.01)
    ledger = EnergyLedger(env, model)
    core.add_listener(ledger)
    ledger.watch(core)
    scope = scope_for(env, ledger, model)
    out = []

    def task(env):
        for _ in range(10):
            yield env.timeout(0.5)
            yield from core.execute("t", 1e-6, after_block=True)

    def measure(env):
        m = yield from scope.measure(10.0)
        out.append(m)

    env.process(task(env))
    env.process(measure(env))
    env.run()
    # 10 wakeups × 0.01 J over 10 s → ≈ 0.01 W just from ω.
    assert out[0].true_w == pytest.approx(0.01, rel=0.01)
