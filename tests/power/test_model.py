"""Unit tests for the power model."""

import pytest

from repro.cpu import CState, CStateTable, Core, PState, PStateTable
from repro.power import PowerModel
from repro.sim import Environment


@pytest.fixture
def model():
    return PowerModel(
        capacitance_f=1e-9,
        static_active_w=0.5,
        wakeup_energy_j=1e-4,
        supply_voltage_v=5.0,
    )


def test_active_power_is_dynamic_plus_static(model):
    pstate = PState("x", 1e9, 1.0)
    # Pd = 1e-9 * 1.0^2 * 1e9 = 1.0 W dynamic + 0.5 W static
    assert model.active_power_w(pstate) == pytest.approx(1.5)


def test_active_power_scales_with_v_squared_f(model):
    slow = PState("slow", 1e9, 1.0)
    fast = PState("fast", 2e9, 1.2)
    ratio = (model.active_power_w(fast) - 0.5) / (model.active_power_w(slow) - 0.5)
    assert ratio == pytest.approx(2 * 1.2**2)


def test_idle_power_reads_cstate(model):
    c1 = CState("C1", 1, power_w=0.123, exit_latency_s=1e-6, min_residency_s=1e-5)
    assert model.idle_power_w(c1) == pytest.approx(0.123)


def test_core_power_reflects_state(model):
    env = Environment()
    cstates = CStateTable(
        [CState("C1", 1, power_w=0.1, exit_latency_s=1e-6, min_residency_s=1e-5)]
    )
    pstates = PStateTable([PState("p", 1e9, 1.0)])
    core = Core(env, 0, cstates, pstates)
    assert model.core_power_w(core) == pytest.approx(0.1)  # idle

    def task(env):
        yield from core.execute("t", 1.0)

    env.process(task(env))
    env.run(until=0.5)  # mid-slice: core is active
    assert model.core_power_w(core) == pytest.approx(1.5)


def test_baseline_power_uses_shallowest_by_default(model):
    env = Environment()
    cstates = CStateTable(
        [
            CState("C1", 1, 0.2, 1e-6, 1e-5),
            CState("C2", 2, 0.05, 1e-4, 1e-3),
        ]
    )
    pstates = PStateTable([PState("p", 1e9, 1.0)])
    core = Core(env, 0, cstates, pstates)
    assert model.baseline_power_w(core) == pytest.approx(0.2)
    assert model.baseline_power_w(core, cstates.deepest) == pytest.approx(0.05)


def test_model_validation():
    with pytest.raises(ValueError):
        PowerModel(capacitance_f=0.0)
    with pytest.raises(ValueError):
        PowerModel(static_active_w=-1.0)
    with pytest.raises(ValueError):
        PowerModel(supply_voltage_v=0.0)


def test_default_model_magnitudes_are_arndale_like():
    """Full-tilt A15 core ≈ 1.5–2.5 W; idle ≪ active; ω ≫ per-item energy."""
    from repro.cpu import arndale_cstates, arndale_pstates

    model = PowerModel()
    full = model.active_power_w(arndale_pstates().fastest)
    idle = model.idle_power_w(arndale_cstates().shallowest)
    assert 1.0 < full < 3.0
    assert idle < full / 5
    # ω vs ~2 µs of processing at full power
    assert model.wakeup_energy_j > 10 * (2e-6 * full)
