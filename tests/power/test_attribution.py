"""Tests for per-process energy attribution (the PowerTop power column)."""

import pytest

from repro.cpu import CState, CStateTable, Core, PState, PStateTable
from repro.power import EnergyAttributor, EnergyLedger, PowerModel
from repro.sim import Environment


def make_rig(wakeup_energy_j=1e-3, idle_w=0.1):
    env = Environment()
    cstates = CStateTable(
        [CState("C1", 1, power_w=idle_w, exit_latency_s=0.0, min_residency_s=0.0)]
    )
    pstates = PStateTable([PState("p", 1e9, 1.0)])  # 1.0 W dynamic
    core = Core(env, 0, cstates, pstates, context_switch_s=0.0)
    model = PowerModel(
        capacitance_f=1e-9, static_active_w=0.0, wakeup_energy_j=wakeup_energy_j
    )
    attributor = EnergyAttributor(env, model)
    ledger = EnergyLedger(env, model)
    core.add_listener(attributor)
    core.add_listener(ledger)
    attributor.watch(core)
    ledger.watch(core)
    return env, core, model, attributor, ledger


def test_active_energy_attributed_to_executor():
    env, core, model, attributor, _ = make_rig(wakeup_energy_j=0.0)

    def task(env, owner, work):
        yield from core.execute(owner, work)

    env.process(task(env, "a", 2.0))
    env.process(task(env, "b", 1.0))
    env.run(until=10.0)
    report = attributor.report()
    assert report.owners["a"].active_j == pytest.approx(2.0)
    assert report.owners["b"].active_j == pytest.approx(1.0)
    assert report.owners["a"].busy_s == pytest.approx(2.0)


def test_wakeup_energy_attributed_to_waker():
    env, core, model, attributor, _ = make_rig(wakeup_energy_j=1e-3)

    def waker(env, owner, at):
        yield env.timeout(at)
        yield from core.execute(owner, 0.01)

    env.process(waker(env, "a", 1.0))
    env.process(waker(env, "b", 3.0))
    env.run(until=10.0)
    report = attributor.report()
    assert report.owners["a"].wakeups == 1
    assert report.owners["b"].wakeups == 1
    assert report.owners["a"].wakeup_j == pytest.approx(1e-3)


def test_latched_task_pays_no_wakeup():
    env, core, model, attributor, _ = make_rig(wakeup_energy_j=1e-3)

    def task(env, owner):
        yield from core.execute(owner, 0.5)

    env.process(task(env, "first"))
    env.process(task(env, "latcher"))  # queued while core active
    env.run()
    report = attributor.report()
    assert report.owners["first"].wakeups == 1
    assert "latcher" not in report.owners or report.owners["latcher"].wakeups == 0


def test_attribution_sums_to_ledger_total():
    """The invariant PowerTop only approximates: shares sum exactly."""
    env, core, model, attributor, ledger = make_rig()

    def task(env, owner, period, work):
        while True:
            yield env.timeout(period)
            yield from core.execute(owner, work, after_block=True)

    env.process(task(env, "a", 0.5, 0.05))
    env.process(task(env, "b", 0.8, 0.02))
    env.run(until=20.0)
    ledger.settle()
    report = attributor.report()
    assert report.total_j == pytest.approx(ledger.total_energy_j(), rel=1e-9)


def test_idle_energy_is_unattributed():
    env, core, model, attributor, _ = make_rig(idle_w=0.25)
    env.run(until=4.0)
    report = attributor.report()
    assert report.idle_j == pytest.approx(1.0)
    assert report.attributed_j == 0.0


def test_power_and_share_helpers():
    env, core, model, attributor, _ = make_rig(wakeup_energy_j=0.0)

    def task(env, owner, work):
        yield from core.execute(owner, work)

    env.process(task(env, "a", 3.0))
    env.process(task(env, "b", 1.0))
    env.run(until=10.0)
    report = attributor.report()
    assert report.power_w("a") == pytest.approx(0.3)
    assert report.share("a") == pytest.approx(0.75)
    assert report.share("ghost") == 0.0
    assert report.power_w("ghost") == 0.0


def test_top_ranks_by_total_energy():
    env, core, model, attributor, _ = make_rig(wakeup_energy_j=0.0)

    def task(env, owner, work):
        yield from core.execute(owner, work)

    for owner, work in (("small", 0.1), ("big", 2.0), ("mid", 0.5)):
        env.process(task(env, owner, work))
    env.run(until=10.0)
    top = attributor.report().top(2)
    assert [name for name, _ in top] == ["big", "mid"]


def test_reset_clears_window():
    env, core, model, attributor, _ = make_rig()

    def task(env):
        yield from core.execute("a", 1.0)

    env.process(task(env))
    env.run(until=2.0)
    attributor.reset()
    env.run(until=4.0)
    report = attributor.report()
    assert "a" not in report.owners
    assert report.duration_s == pytest.approx(2.0)


def test_empty_window_rejected():
    env, core, model, attributor, _ = make_rig()
    with pytest.raises(ValueError):
        attributor.report()


def test_attribution_through_pbpl_system():
    """Integration: attribute a heterogeneous PBPL run per consumer."""
    import numpy as np

    from repro.cpu import Machine
    from repro.core import PBPLConfig, PBPLSystem
    from repro.sim import RandomStreams
    from repro.workloads import poisson_trace

    env = Environment()
    streams = RandomStreams(seed=5)
    machine = Machine(env, n_cores=1, streams=streams)
    model = PowerModel()
    attributor = EnergyAttributor(env, model)
    machine.add_listener(attributor)
    for core in machine.cores:
        attributor.watch(core)
    traces = [
        poisson_trace(4000.0, 2.0, streams.stream("hot")),
        poisson_trace(100.0, 2.0, streams.stream("cold")),
    ]
    PBPLSystem(env, machine, traces, PBPLConfig(slot_size_s=5e-3)).start()
    env.run(until=2.0)
    report = attributor.report()
    # The hot consumer is the hungrier one, by a wide margin.
    assert report.power_w("consumer-0") > 5 * report.power_w("consumer-1")
    assert report.attributed_j > 0
