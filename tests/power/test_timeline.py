"""Tests for the power waveform recorder."""

import pytest

from repro.cpu import CState, CStateTable, Core, PState, PStateTable
from repro.power import PowerModel
from repro.power.timeline import PowerTimeline
from repro.sim import Environment


def make_rig(max_steps=None):
    env = Environment()
    cstates = CStateTable(
        [CState("C1", 1, power_w=0.1, exit_latency_s=0.0, min_residency_s=0.0)]
    )
    pstates = PStateTable([PState("p", 1e9, 1.0)])  # 1 W dynamic
    core = Core(env, 0, cstates, pstates, context_switch_s=0.0)
    model = PowerModel(capacitance_f=1e-9, static_active_w=0.0, wakeup_energy_j=1e-4)
    timeline = PowerTimeline(env, model, [core], max_steps=max_steps)
    core.add_listener(timeline)
    return env, core, timeline


def test_initial_level_is_idle_power():
    env, core, timeline = make_rig()
    assert timeline.power_at(0.0) == pytest.approx(0.1)


def test_steps_track_activity():
    env, core, timeline = make_rig()

    def task(env):
        yield env.timeout(1.0)
        yield from core.execute("t", 2.0)

    env.process(task(env))
    env.run(until=10.0)
    assert timeline.power_at(0.5) == pytest.approx(0.1)  # idle
    assert timeline.power_at(2.0) == pytest.approx(1.0)  # active
    assert timeline.power_at(5.0) == pytest.approx(0.1)  # idle again


def test_power_before_recording_rejected():
    env, core, timeline = make_rig()
    with pytest.raises(ValueError):
        timeline.power_at(-1.0)


def test_impulses_record_wakeups():
    env, core, timeline = make_rig()

    def task(env):
        for _ in range(3):
            yield env.timeout(1.0)
            yield from core.execute("t", 0.1, after_block=True)

    env.process(task(env))
    env.run()
    assert len(timeline.impulses) == 3
    assert all(e == pytest.approx(1e-4) for _, e in timeline.impulses)


def test_sample_grid():
    env, core, timeline = make_rig()

    def task(env):
        yield env.timeout(1.0)
        yield from core.execute("t", 1.0)

    env.process(task(env))
    env.run(until=4.0)
    samples = timeline.sample(0.0, 3.0, 7)
    assert len(samples) == 7
    assert samples[0].power_w == pytest.approx(0.1)
    assert samples[3].power_w == pytest.approx(1.0)  # t=1.5, mid-slice
    assert samples[6].power_w == pytest.approx(0.1)


def test_sample_bitwise_matches_per_point_power_at():
    """The vectorized searchsorted sweep returns exactly what a scalar
    power_at() loop over the same grid would — times and values both."""
    env, core, timeline = make_rig()

    def task(env):
        for _ in range(5):
            yield env.timeout(0.3)
            yield from core.execute("t", 0.21)

    env.process(task(env))
    env.run(until=4.0)
    n = 101
    t0, t1 = 0.0, 3.7
    samples = timeline.sample(t0, t1, n)
    dt = (t1 - t0) / (n - 1)
    for i, s in enumerate(samples):
        t = t0 + i * dt
        assert s.time_s == t
        assert s.power_w == timeline.power_at(t)


def test_sample_validation():
    env, core, timeline = make_rig()
    env.run(until=1.0)
    with pytest.raises(ValueError):
        timeline.sample(0.0, 1.0, 1)
    with pytest.raises(ValueError):
        timeline.sample(1.0, 0.5, 5)


def test_render_produces_waveform():
    env, core, timeline = make_rig()

    def task(env):
        yield env.timeout(1.0)
        yield from core.execute("t", 1.0)

    env.process(task(env))
    env.run(until=4.0)
    art = timeline.render(0.0, 4.0, width=40, height=4)
    lines = art.splitlines()
    assert len(lines) == 5  # 4 rows + axis
    assert "█" in art
    assert "W over" in lines[-1]


def test_downsampling_bounds_memory():
    env, core, timeline = make_rig(max_steps=64)

    def task(env):
        for _ in range(500):
            yield env.timeout(0.01)
            yield from core.execute("t", 0.001)

    env.process(task(env))
    env.run()
    assert len(timeline.steps) <= 130  # ≤ ~2× the cap between halvings
    # The waveform is still usable end to end.
    assert timeline.power_at(env.now - 0.001) >= 0
