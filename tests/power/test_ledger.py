"""Unit tests for the energy ledger, including the paper's Fig. 1 claim."""

import pytest

from repro.cpu import CState, CStateTable, Core, PState, PStateTable
from repro.power import EnergyLedger, PowerModel
from repro.sim import Environment


def make_rig(wakeup_energy_j=1e-4, idle_w=0.1, exit_latency_s=0.0):
    env = Environment()
    cstates = CStateTable(
        [CState("C1", 1, power_w=idle_w, exit_latency_s=exit_latency_s, min_residency_s=0.0)]
    )
    pstates = PStateTable([PState("p", 1e9, 1.0)])
    core = Core(env, 0, cstates, pstates, context_switch_s=0.0)
    model = PowerModel(
        capacitance_f=1e-9,  # 1.0 W dynamic at 1 GHz / 1 V
        static_active_w=0.0,
        wakeup_energy_j=wakeup_energy_j,
    )
    ledger = EnergyLedger(env, model)
    core.add_listener(ledger)
    ledger.watch(core)
    return env, core, model, ledger


def test_pure_idle_energy():
    env, core, model, ledger = make_rig()
    env.run(until=10.0)
    ledger.settle()
    assert ledger.total_energy_j() == pytest.approx(0.1 * 10.0)


def test_active_slice_energy():
    env, core, model, ledger = make_rig(wakeup_energy_j=0.0)

    def task(env):
        yield from core.execute("t", 2.0)

    env.process(task(env))
    env.run(until=10.0)
    ledger.settle()
    # 2 s active at 1.0 W + 8 s idle at 0.1 W
    assert ledger.total_energy_j() == pytest.approx(2.0 * 1.0 + 8.0 * 0.1)


def test_wakeup_energy_charged_per_transition():
    env, core, model, ledger = make_rig(wakeup_energy_j=5e-3)

    def task(env):
        for _ in range(4):
            yield from core.execute("t", 0.1)
            yield env.timeout(1.0)  # let the core go idle in between

    env.process(task(env))
    env.run()
    ledger.settle()
    breakdown = ledger.total_breakdown()
    assert breakdown.wakeups == 4
    assert breakdown.wakeup_j == pytest.approx(4 * 5e-3)


def test_residency_accounting():
    env, core, model, ledger = make_rig(wakeup_energy_j=0.0)

    def task(env):
        yield from core.execute("t", 3.0)

    env.process(task(env))
    env.run(until=10.0)
    ledger.settle()
    breakdown = ledger.core_breakdown(0)
    assert breakdown.residency_s["active"] == pytest.approx(3.0)
    assert breakdown.residency_s["C1"] == pytest.approx(7.0)


def test_average_power():
    env, core, model, ledger = make_rig(wakeup_energy_j=0.0)

    def task(env):
        yield from core.execute("t", 5.0)

    env.process(task(env))
    env.run(until=10.0)
    ledger.settle()
    # (5 s × 1.0 W + 5 s × 0.1 W) / 10 s
    assert ledger.average_power_w(10.0) == pytest.approx(0.55)


def test_average_power_rejects_nonpositive_duration():
    env, core, model, ledger = make_rig()
    with pytest.raises(ValueError):
        ledger.average_power_w(0.0)


def test_unwatched_core_reports_empty_breakdown():
    env, core, model, ledger = make_rig()
    assert ledger.core_breakdown(42).total_j == 0.0


def test_settle_is_idempotent():
    env, core, model, ledger = make_rig()
    env.run(until=5.0)
    ledger.settle()
    once = ledger.total_energy_j()
    ledger.settle()
    assert ledger.total_energy_j() == pytest.approx(once)


def test_grouped_idle_cheaper_than_fragmented():
    """The paper's Fig. 1: same total work, fewer wakeups → less energy.

    Two schedules of 4 × 0.1 s of work over 10 s:
    * fragmented: 4 separate wakeups;
    * grouped: one wakeup, work back-to-back.
    """

    def run(schedule):
        env, core, model, ledger = make_rig(wakeup_energy_j=5e-3)

        def job(env, start):
            if env.now < start:
                yield env.timeout(start - env.now)
            yield from core.execute("t", 0.1)

        for start in schedule:
            env.process(job(env, start))
        env.run(until=10.0)
        ledger.settle()
        return ledger.total_energy_j(), ledger.total_breakdown().wakeups

    fragmented_j, frag_wakeups = run([0.0, 2.0, 4.0, 6.0])
    grouped_j, grouped_wakeups = run([0.0, 0.0, 0.0, 0.0])
    assert frag_wakeups == 4
    assert grouped_wakeups == 1
    assert grouped_j < fragmented_j
    # The gap is exactly the 3 saved wakeups (idle/active time is equal).
    assert fragmented_j - grouped_j == pytest.approx(3 * 5e-3)
