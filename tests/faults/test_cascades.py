"""Cascading faults: triggers, window resolution, and the live detector."""

import pytest

from repro.faults import (
    BurstStorm,
    ConsumerSlowdown,
    FaultDetector,
    FaultPlan,
    LostSignals,
    OverflowTrigger,
    RecoveryTrigger,
    RuntimeInjector,
    TriggeredFault,
    WindowTrigger,
)
from repro.faults.chaos import DEFAULT_SCENARIOS, run_scenario
from repro.harness.params import StandardParams
from repro.sim import Environment

from tests.faults.test_spec_and_injectors import make_live_system, sample_at

BY_NAME = {s.name: s for s in DEFAULT_SCENARIOS}


def _slow(duration_s=0.2, factor=3.0):
    return ConsumerSlowdown(start_s=0.0, duration_s=duration_s, factor=factor)


# -- static window resolution ----------------------------------------------------


def test_window_trigger_resolves_from_source_edges():
    plan = FaultPlan(
        [
            BurstStorm(start_s=0.2, duration_s=0.1, factor=2.0),
            TriggeredFault(_slow(0.3), WindowTrigger(source=0, edge="end")),
            TriggeredFault(
                _slow(0.1), WindowTrigger(source=0, edge="start", delay_s=0.05)
            ),
        ]
    )
    windows = plan.resolved_windows()
    assert windows[0] == pytest.approx((0.2, 0.3))
    assert windows[1] == pytest.approx((0.3, 0.6))
    assert windows[2] == pytest.approx((0.25, 0.35))
    # windows() sorts and includes the statically resolvable cascade.
    assert plan.windows() == sorted(windows)
    assert plan.last_fault_end_s == pytest.approx(0.6)


def test_window_trigger_can_chain_onto_another_triggered_fault():
    plan = FaultPlan(
        [
            BurstStorm(start_s=0.1, duration_s=0.1, factor=2.0),
            TriggeredFault(_slow(0.1), WindowTrigger(source=0, edge="end")),
            TriggeredFault(_slow(0.1), WindowTrigger(source=1, edge="end")),
        ]
    )
    assert plan.resolved_windows()[2] == pytest.approx((0.3, 0.4))


def test_dynamic_triggers_have_no_static_window():
    plan = FaultPlan(
        [
            TriggeredFault(_slow(), RecoveryTrigger(count=2)),
            TriggeredFault(_slow(), OverflowTrigger(rate_per_s=100.0)),
        ]
    )
    assert plan.resolved_windows() == [None, None]
    assert plan.windows() == []


def test_window_trigger_rejects_forward_and_dynamic_sources():
    with pytest.raises(ValueError, match="earlier fault"):
        FaultPlan([TriggeredFault(_slow(), WindowTrigger(source=0))])
    with pytest.raises(ValueError, match="earlier fault"):
        FaultPlan(
            [
                BurstStorm(start_s=0.1, duration_s=0.1, factor=2.0),
                TriggeredFault(_slow(), WindowTrigger(source=5)),
            ]
        )
    with pytest.raises(ValueError, match="dynamically triggered"):
        FaultPlan(
            [
                TriggeredFault(_slow(), RecoveryTrigger()),
                TriggeredFault(_slow(), WindowTrigger(source=0)),
            ]
        )


def test_triggered_fault_validates_its_wrapped_spec():
    with pytest.raises(ValueError, match="only runtime faults"):
        TriggeredFault(
            BurstStorm(start_s=0.0, duration_s=0.1, factor=2.0),
            WindowTrigger(source=0),
        )
    with pytest.raises(ValueError, match="start_s=0"):
        TriggeredFault(
            ConsumerSlowdown(start_s=0.1, duration_s=0.1, factor=2.0),
            RecoveryTrigger(),
        )


def test_trigger_parameter_validation():
    with pytest.raises(ValueError, match=">= 0"):
        WindowTrigger(source=-1)
    with pytest.raises(ValueError, match="edge"):
        WindowTrigger(source=0, edge="middle")
    with pytest.raises(ValueError, match="delay"):
        WindowTrigger(source=0, delay_s=-0.1)
    with pytest.raises(ValueError, match=">= 1"):
        RecoveryTrigger(count=0)
    with pytest.raises(ValueError, match="positive"):
        OverflowTrigger(rate_per_s=0.0)
    with pytest.raises(ValueError, match="positive"):
        OverflowTrigger(rate_per_s=1.0, window_s=0.0)


def test_cascades_describe_trigger_then_fault():
    fault = TriggeredFault(_slow(), WindowTrigger(source=0, edge="end"))
    text = fault.describe()
    assert text.startswith("at fault #0's window end:")
    assert "slow all consumers" in text


# -- live application ------------------------------------------------------------


def test_window_triggered_fault_fires_at_resolved_time():
    env = Environment()
    system = make_live_system(env)
    plan = FaultPlan(
        [
            LostSignals(start_s=0.2, duration_s=0.2, prob=0.5),
            TriggeredFault(
                _slow(0.2), WindowTrigger(source=0, edge="end", delay_s=0.1)
            ),
        ]
    )
    RuntimeInjector(env, system, plan).start()
    # Triggered window resolves to [0.5, 0.7).
    seen = sample_at(
        env, [0.45, 0.6, 0.8], lambda: system.consumers[0].service_scale
    )
    env.run(until=1.0)
    assert seen[0.45] == 1.0
    assert seen[0.6] == pytest.approx(3.0)
    assert seen[0.8] == 1.0


def test_dynamic_trigger_skips_without_a_detector_host():
    # make_live_system has no managers: nothing can host a detector, so
    # a dynamically triggered fault skips (mirrors the baseline impls).
    env = Environment()
    system = make_live_system(env)
    plan = FaultPlan([TriggeredFault(_slow(0.2), RecoveryTrigger())])
    RuntimeInjector(env, system, plan).start()
    seen = sample_at(env, [0.5], lambda: system.consumers[0].service_scale)
    env.run(until=1.0)
    assert seen[0.5] == 1.0


# -- the detector's trigger waiters ----------------------------------------------


def test_when_recoveries_fires_at_threshold():
    env = Environment()
    detector = FaultDetector(env, recovery_threshold=10, hysteresis_s=0.05)
    waiter = detector.when_recoveries(2)

    def driver(env):
        yield env.timeout(0.1)
        detector.note_recovery()
        assert not waiter.triggered
        yield env.timeout(0.1)
        detector.note_recovery()

    env.process(driver(env))
    env.run(until=0.5)
    assert waiter.triggered
    # Condition already holds: a late waiter succeeds immediately.
    assert detector.when_recoveries(1).triggered


def test_when_overflow_rate_uses_its_own_window():
    env = Environment()
    detector = FaultDetector(env, hysteresis_s=0.05)
    waiter = detector.when_overflow_rate(rate_per_s=100.0, window_s=0.02)

    def driver(env):
        yield env.timeout(0.1)
        detector.note_overflow()  # 1 / 0.02s = 50/s: below threshold
        assert not waiter.triggered
        yield env.timeout(0.01)
        detector.note_overflow()  # 2 / 0.02s = 100/s: fires
        yield env.timeout(0.0)

    env.process(driver(env))
    env.run(until=0.5)
    assert waiter.triggered


# -- the shipped cascade scenario ------------------------------------------------


def test_cascade_scenario_is_deterministic_and_conserves():
    params = StandardParams(duration_s=0.6, seed=2014)
    a = run_scenario(BY_NAME["cascade"], params, 3)
    b = run_scenario(BY_NAME["cascade"], params, 3)
    assert a.to_dict() == b.to_dict()
    assert a.conservation_ok
    assert a.verdict in ("OK", "SHED")
    # The triggered slowdown is part of the plan's notes.
    assert any("window end" in note for note in a.notes)


def test_cascade_scenario_scores_on_a_baseline_too():
    params = StandardParams(duration_s=0.6, seed=2014)
    result = run_scenario(BY_NAME["cascade"], params, 3, impl="Sem")
    assert result.impl == "Sem"
    assert result.conservation_ok
