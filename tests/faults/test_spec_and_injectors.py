"""Fault specs, plan partitioning, and runtime injector toggles."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.buffers.pool import GlobalBufferPool
from repro.cpu import Machine
from repro.faults import (
    BurstStorm,
    ClockDrift,
    ConsumerSlowdown,
    FaultPlan,
    LostSignals,
    PoolContention,
    ProducerStall,
    RuntimeInjector,
    perturb_traces,
)
from repro.sim import Environment, RandomStreams
from repro.workloads import poisson_trace


# -- plan -----------------------------------------------------------------------


def test_plan_partitions_trace_and_runtime_faults():
    plan = FaultPlan(
        [
            ProducerStall(0.1, 0.2),
            LostSignals(0.3, 0.1, prob=0.5),
            BurstStorm(0.5, 0.1, factor=2.0),
            ClockDrift(0.0, 1.0, rate=0.01),
        ]
    )
    assert [type(f).__name__ for f in plan.trace_faults] == [
        "ProducerStall",
        "BurstStorm",
    ]
    assert [type(f).__name__ for f in plan.runtime_faults] == [
        "LostSignals",
        "ClockDrift",
    ]
    assert len(plan) == 4 and bool(plan)
    assert plan.windows()[0] == (0.0, 1.0)
    assert plan.last_fault_end_s == pytest.approx(1.0)


def test_empty_plan_is_falsy_with_no_windows():
    plan = FaultPlan()
    assert not plan
    assert plan.windows() == []
    assert plan.last_fault_end_s == float("-inf")


def test_plan_rejects_bad_windows():
    with pytest.raises(ValueError, match="positive"):
        FaultPlan([ProducerStall(0.1, 0.0)])
    with pytest.raises(ValueError, match="t=0"):
        FaultPlan([LostSignals(-0.1, 0.2, prob=0.5)])


def test_every_fault_describes_itself():
    plan = FaultPlan(
        [
            ProducerStall(0.1, 0.2, consumer=1, drop=True),
            BurstStorm(0.5, 0.1, factor=2.0),
            LostSignals(0.3, 0.1, prob=0.5),
            ClockDrift(0.0, 1.0, rate=0.01),
            ConsumerSlowdown(0.2, 0.2, factor=3.0, consumer=0),
            PoolContention(0.4, 0.2, slots=10),
        ]
    )
    lines = plan.describe()
    assert len(lines) == len(plan)
    assert all(isinstance(line, str) and line for line in lines)


# -- trace application ----------------------------------------------------------


def test_perturb_traces_targets_one_consumer():
    rng = np.random.default_rng(3)
    traces = [poisson_trace(200.0, 1.0, np.random.default_rng(s)) for s in (1, 2)]
    plan = FaultPlan([ProducerStall(0.2, 0.3, consumer=1)])
    out = perturb_traces(traces, plan, rng)
    np.testing.assert_array_equal(out[0].times, traces[0].times)
    assert not np.array_equal(out[1].times, traces[1].times)


def test_perturb_traces_rejects_out_of_range_target():
    rng = np.random.default_rng(3)
    traces = [poisson_trace(200.0, 1.0, np.random.default_rng(1))]
    plan = FaultPlan([BurstStorm(0.2, 0.3, factor=2.0, consumer=5)])
    with pytest.raises(ValueError, match="consumer 5"):
        perturb_traces(traces, plan, rng)


# -- runtime application --------------------------------------------------------


def make_live_system(env):
    """The minimal shape RuntimeInjector drives: machine.timers,
    consumers with a service_scale, and the global pool."""
    machine = Machine(env, n_cores=1, streams=RandomStreams(seed=0))
    consumers = [SimpleNamespace(service_scale=1.0) for _ in range(2)]
    pool = GlobalBufferPool(base_allocation=10, n_consumers=2)
    # A shrunken buffer returns slots to the pool — those free slots are
    # what a contention fault steals.
    pool.register("consumer-0", segment_size=4).set_capacity(4)
    pool.register("consumer-1", segment_size=4)
    return SimpleNamespace(machine=machine, consumers=consumers, pool=pool)


def sample_at(env, times, read):
    out = {}

    def probe(env):
        for t in sorted(times):
            if env.now < t:
                yield env.timeout(t - env.now)
            out[t] = read()

    env.process(probe(env))
    return out


def test_injector_toggles_signal_loss_inside_the_window():
    env = Environment()
    system = make_live_system(env)
    plan = FaultPlan([LostSignals(0.2, 0.3, prob=0.7)])
    RuntimeInjector(env, system, plan).start()
    seen = sample_at(
        env, [0.1, 0.35, 0.6], lambda: system.machine.timers.signal_loss_prob
    )
    env.run(until=1.0)
    assert seen[0.1] == 0.0
    assert seen[0.35] == pytest.approx(0.7)
    assert seen[0.6] == 0.0


def test_injector_composes_overlapping_drift_additively():
    env = Environment()
    system = make_live_system(env)
    plan = FaultPlan(
        [ClockDrift(0.1, 0.4, rate=0.02), ClockDrift(0.3, 0.4, rate=0.03)]
    )
    RuntimeInjector(env, system, plan).start()
    seen = sample_at(
        env, [0.2, 0.4, 0.6, 0.8], lambda: system.machine.timers.clock_drift_rate
    )
    env.run(until=1.0)
    assert seen[0.2] == pytest.approx(0.02)
    assert seen[0.4] == pytest.approx(0.05)
    assert seen[0.6] == pytest.approx(0.03)
    assert seen[0.8] == pytest.approx(0.0)


def test_injector_scales_and_restores_consumer_service():
    env = Environment()
    system = make_live_system(env)
    plan = FaultPlan([ConsumerSlowdown(0.2, 0.3, factor=4.0, consumer=1)])
    RuntimeInjector(env, system, plan).start()
    seen = sample_at(
        env,
        [0.35, 0.8],
        lambda: (system.consumers[0].service_scale, system.consumers[1].service_scale),
    )
    env.run(until=1.0)
    assert seen[0.35] == (1.0, pytest.approx(4.0))
    assert seen[0.8] == (1.0, pytest.approx(1.0))


def test_injector_withholds_and_restores_pool_slots():
    env = Environment()
    system = make_live_system(env)
    before = system.pool.total_slots
    plan = FaultPlan([PoolContention(0.2, 0.3, slots=10**6)])
    injector = RuntimeInjector(env, system, plan).start()
    seen = sample_at(env, [0.35, 0.8], lambda: system.pool.total_slots)
    env.run(until=1.0)
    assert seen[0.35] < before  # all free slots gone during the window
    assert seen[0.8] == before  # and back afterwards
    assert system.pool.contention_events == 1
    assert system.pool.slots_withheld == 0
    assert len(injector.events) == 2  # inject + lift
