"""Fault-gated adaptive overflow: byte-identity, gating, hysteresis."""

import pytest

from repro.core.system import PBPLSystem
from repro.faults.adaptive import DEFAULT_HYSTERESIS_SLOTS, FaultDetector
from repro.faults.chaos import DEFAULT_SCENARIOS, run_scenario
from repro.harness.params import StandardParams
from repro.harness.runner import Rig, base_trace
from repro.impls.multi import phase_shifted_traces
from repro.sim import Environment
from repro.trace.recorder import record_run

from tests.faults.test_spec_and_injectors import sample_at

BY_NAME = {s.name: s for s in DEFAULT_SCENARIOS}


def build_adaptive_system(duration_s=0.5, n_consumers=3):
    params = StandardParams(duration_s=duration_s, seed=2014)
    rig = Rig.build(params, 0)
    traces = phase_shifted_traces(base_trace(params, 0), n_consumers)
    config = params.pbpl_config(
        overflow_policy="adaptive", harden_predictor=True
    )
    system = PBPLSystem(rig.env, rig.machine, traces, config).start()
    return rig, system, config


# -- byte-identity on clean runs -------------------------------------------------


def test_zero_fault_run_scores_identically_to_block():
    params = StandardParams(duration_s=0.4, seed=2014)
    adaptive = run_scenario(
        BY_NAME["clean"], params, 3,
        config_overrides={"overflow_policy": "adaptive"},
    )
    block = run_scenario(
        BY_NAME["clean"], params, 3,
        config_overrides={"overflow_policy": "block"},
    )
    assert adaptive.adaptive_shed_windows == 0
    assert adaptive.adaptive_shed_s == 0.0
    assert adaptive.to_dict() == block.to_dict()


def test_zero_fault_trace_is_byte_identical_to_block():
    def events(policy):
        run = record_run(
            "PBPL", "clean", duration_s=0.3, n_consumers=2,
            config_overrides={"overflow_policy": policy},
        )
        return [
            (e.ts_s, e.dur_s, e.phase, e.category, e.track, e.name, e.seq, e.args)
            for e in run.tracer.events
        ]

    assert events("adaptive") == events("block")


# -- gating ----------------------------------------------------------------------


def test_detector_engages_shed_and_reverts_after_hysteresis():
    rig, system, config = build_adaptive_system()
    detector = system.adaptive.detector
    # Default hysteresis is 4 slot sizes Δ.
    slot = config.effective_slot_size()
    assert detector.hysteresis_s == pytest.approx(slot * DEFAULT_HYSTERESIS_SLOTS)

    def driver(env):
        yield env.timeout(0.1)
        detector.note_recovery()

    rig.env.process(driver(rig.env))
    during = 0.1 + detector.hysteresis_s / 2
    after = 0.1 + detector.hysteresis_s + 0.01
    seen = sample_at(
        rig.env,
        [0.05, during, after],
        lambda: (
            detector.active,
            tuple(c.buffer.policy for c in system.consumers),
        ),
    )
    rig.env.run(until=0.5)

    active, policies = seen[0.05]
    assert not active and set(policies) == {"block"}
    active, policies = seen[during]
    assert active and set(policies) == {"shed-to-deadline"}
    active, policies = seen[after]
    assert not active and set(policies) == {"block"}
    assert system.adaptive.shed_windows == 1
    assert system.adaptive.total_shed_s(0.5) == pytest.approx(
        detector.hysteresis_s
    )


def test_recovery_inside_active_window_extends_without_double_trigger():
    env = Environment()
    detector = FaultDetector(env, hysteresis_s=0.05)

    def driver(env):
        yield env.timeout(0.1)
        detector.note_recovery()
        yield env.timeout(0.03)  # inside the active window
        detector.note_recovery()

    env.process(driver(env))
    seen = sample_at(
        env,
        # Past the first deadline (0.15) but not the extended one (0.18).
        [0.16, 0.20],
        lambda: detector.active,
    )
    env.run(until=0.5)
    assert detector.activations == 1
    assert detector.recoveries_seen == 2
    assert seen[0.16] is True
    assert seen[0.20] is False


def test_shed_engages_only_under_detected_faults():
    params = StandardParams(duration_s=1.0, seed=2014)
    result = run_scenario(
        BY_NAME["lost-signals"], params, 4,
        config_overrides={"overflow_policy": "adaptive"},
    )
    assert result.watchdog_recoveries > 0
    assert result.adaptive_shed_windows >= 1
    assert result.adaptive_shed_s > 0
    assert result.adaptive_shed_s < params.duration_s  # it reverted
    assert result.conservation_ok


def test_adaptive_scenario_runs_are_deterministic():
    params = StandardParams(duration_s=0.5, seed=2014)
    overrides = {"overflow_policy": "adaptive"}
    a = run_scenario(BY_NAME["lost-signals"], params, 3, config_overrides=overrides)
    b = run_scenario(BY_NAME["lost-signals"], params, 3, config_overrides=overrides)
    assert a.to_dict() == b.to_dict()
