"""The chaos harness: determinism, conservation, and the latency bound."""

import json

import pytest

from repro.faults import (
    DEFAULT_SCENARIOS,
    SMOKE_SCENARIOS,
    FaultPlan,
    LostSignals,
    ProducerStall,
    run_chaos,
    run_scenario,
)
from repro.faults.chaos import ChaosScenario, _merged_windows
from repro.harness.params import StandardParams

#: One short faulted scenario keeps each test to a fraction of a second.
DURATION = 0.8
CONSUMERS = 2


def combined():
    return next(s for s in DEFAULT_SCENARIOS if s.name == "combined")


def test_scenario_matrix_shape():
    names = [s.name for s in DEFAULT_SCENARIOS]
    assert names[0] == "clean"  # control row first
    assert len(names) == len(set(names))
    smoke = [s.name for s in SMOKE_SCENARIOS]
    assert smoke == ["clean", "lost-signals", "combined"]


def test_combined_scenario_conserves_and_bounds_latency():
    params = StandardParams(duration_s=DURATION, seed=11)
    result = run_scenario(combined(), params, CONSUMERS)
    assert result.conservation_ok, (
        result.produced,
        result.consumed,
        result.items_shed,
        result.buffered,
    )
    assert result.verdict in ("OK", "SHED")
    assert result.max_latency_s <= result.latency_bound_s + 1e-9
    assert result.lost_signals > 0
    assert result.watchdog_recoveries > 0
    assert result.power_under_faults_w is not None


def test_clean_scenario_reports_no_fault_activity():
    params = StandardParams(duration_s=DURATION, seed=11)
    clean = next(s for s in DEFAULT_SCENARIOS if s.name == "clean")
    result = run_scenario(clean, params, CONSUMERS)
    assert result.lost_signals == 0
    assert result.watchdog_recoveries == 0
    assert result.power_under_faults_w is None
    assert result.notes == []


def test_same_seed_same_report_bytes():
    kwargs = dict(seed=2014, duration_s=DURATION, n_consumers=CONSUMERS)
    a = run_chaos(SMOKE_SCENARIOS, **kwargs)
    b = run_chaos(SMOKE_SCENARIOS, **kwargs)
    assert a.render() == b.render()
    assert a.to_json() == b.to_json()


def test_different_seed_different_report():
    a = run_chaos(SMOKE_SCENARIOS, seed=1, duration_s=DURATION, n_consumers=CONSUMERS)
    b = run_chaos(SMOKE_SCENARIOS, seed=2, duration_s=DURATION, n_consumers=CONSUMERS)
    assert a.render() != b.render()


def test_report_renders_every_scenario_and_parses_as_json():
    report = run_chaos(
        SMOKE_SCENARIOS, seed=5, duration_s=DURATION, n_consumers=CONSUMERS
    )
    text = report.render()
    for scenario in SMOKE_SCENARIOS:
        assert f"| {scenario.name} |" in text
    payload = json.loads(report.to_json())
    assert payload["passed"] == report.passed
    assert [s["scenario"] for s in payload["scenarios"]] == [
        s.name for s in SMOKE_SCENARIOS
    ]


def test_watchdog_off_breaks_the_guarantee():
    """The control experiment for the tentpole: with the watchdog
    disabled, a sustained lost-signal fault strands reserved slots and
    items are served far past the bound (or leak into the buffers)."""
    params = StandardParams(duration_s=DURATION, seed=11)
    scenario = ChaosScenario(
        "lost-hard",
        "every slot timer swallowed",
        lambda T, M: FaultPlan([LostSignals(0.2 * T, 0.6 * T, prob=1.0)]),
    )
    armed = run_scenario(scenario, params, n_consumers=1)
    disarmed = run_scenario(
        scenario, params, n_consumers=1, config_overrides={"watchdog_grace_s": 0.0}
    )
    assert armed.verdict == "OK"
    assert armed.deadline_misses == 0
    assert armed.watchdog_recoveries > 0
    # Disarmed, the only saviour is overflow churn — too late for the bound.
    assert disarmed.watchdog_recoveries == 0
    assert disarmed.deadline_misses > 0
    assert disarmed.max_latency_s > disarmed.latency_bound_s


def test_merged_windows_coalesce_overlaps_and_clip():
    plan = FaultPlan(
        [
            ProducerStall(0.1, 0.3),
            LostSignals(0.3, 0.3, prob=0.5),
            LostSignals(0.9, 5.0, prob=0.5),
        ]
    )
    assert _merged_windows(plan, 1.0) == [
        (0.1, pytest.approx(0.6)),
        (0.9, 1.0),
    ]


def test_baseline_scenario_scoring():
    params = StandardParams(duration_s=DURATION, seed=11)
    result = run_scenario(combined(), params, CONSUMERS, impl="Sem")
    assert result.impl == "Sem"
    assert result.conservation_ok
    # Baselines never touch the slot machinery or the hardened predictor.
    assert result.lost_signals == 0
    assert result.watchdog_recoveries == 0
    assert result.predictor_clamps == 0
    assert len(result.per_consumer) == CONSUMERS
    assert all(row.conservation_ok for row in result.per_consumer)


def test_per_consumer_rows_and_predictor_counters():
    params = StandardParams(duration_s=DURATION, seed=11)
    result = run_scenario(combined(), params, CONSUMERS)
    assert len(result.per_consumer) == CONSUMERS
    assert {row.owner for row in result.per_consumer} == {
        f"consumer-{i}" for i in range(CONSUMERS)
    }
    assert sum(row.produced for row in result.per_consumer) == result.produced
    assert sum(row.items_shed for row in result.per_consumer) == result.items_shed
    worst = result.worst_consumer
    assert worst is not None and worst.badness == max(
        row.badness for row in result.per_consumer
    )
    # The burst storm makes the hardened predictor clamp at least once.
    assert result.predictor_clamps > 0
    dumped = result.to_dict()
    assert dumped["worst_consumer"] == worst.owner
    assert len(dumped["per_consumer"]) == CONSUMERS


def test_report_passed_ignores_baseline_verdicts():
    from repro.faults.chaos import ChaosReport
    from repro.metrics.resilience import ResilienceMetrics

    ok = ResilienceMetrics("s", 1.0, 0.04, 0.005, produced=1, consumed=1)
    bad = ResilienceMetrics(
        "s", 1.0, 0.04, 0.005, impl="Sem", produced=2, consumed=1,
        max_latency_s=9.0,
    )
    report = ChaosReport(seed=0, duration_s=1.0, n_consumers=1, results=[ok])
    report.baselines.append(bad)
    assert report.passed  # baseline LEAKED/VIOLATED rows are informational
    assert "Baseline degradation" in report.render()
