"""Trace perturbation: stalls and burst storms preserve Trace invariants."""

import numpy as np
import pytest

from repro.workloads import inject_burst, inject_stall, poisson_trace


def make_trace(seed=1, rate=500.0, duration=2.0):
    return poisson_trace(rate, duration, np.random.default_rng(seed))


def window_count(trace, start, end):
    return int(np.count_nonzero((trace.times >= start) & (trace.times < end)))


def test_stall_empties_the_window_and_defers_backlog():
    trace = make_trace()
    out = inject_stall(trace, 0.5, 0.3)
    assert window_count(out, 0.5, 0.8) == 0
    # Nothing is lost: the backlog lands exactly at the stall's end.
    assert len(out) == len(trace)
    deferred = window_count(trace, 0.5, 0.8)
    assert int(np.count_nonzero(out.times == 0.8)) == deferred


def test_stall_with_drop_loses_the_window():
    trace = make_trace()
    stalled = window_count(trace, 0.5, 0.3 + 0.5)
    out = inject_stall(trace, 0.5, 0.3, drop=True)
    assert len(out) == len(trace) - stalled
    assert window_count(out, 0.5, 0.8) == 0


def test_stall_at_trace_end_stays_inside_the_window():
    trace = make_trace()
    out = inject_stall(trace, 1.5, 10.0)  # window clips to the trace end
    assert len(out) == len(trace)
    assert out.times.max() < trace.duration_s
    assert np.all(np.diff(out.times) >= 0)


def test_burst_adds_items_only_inside_the_window():
    trace = make_trace()
    rng = np.random.default_rng(7)
    out = inject_burst(trace, 0.5, 0.4, factor=3.0, rng=rng)
    assert len(out) > len(trace)
    extra = len(out) - len(trace)
    assert window_count(out, 0.5, 0.9) == window_count(trace, 0.5, 0.9) + extra
    assert np.all(np.diff(out.times) >= 0)
    assert out.times.max() < out.duration_s


def test_burst_is_deterministic_per_rng():
    trace = make_trace()
    a = inject_burst(trace, 0.2, 0.5, 2.5, np.random.default_rng(42))
    b = inject_burst(trace, 0.2, 0.5, 2.5, np.random.default_rng(42))
    np.testing.assert_array_equal(a.times, b.times)


def test_burst_factor_one_is_identity():
    trace = make_trace()
    out = inject_burst(trace, 0.2, 0.5, 1.0, np.random.default_rng(0))
    np.testing.assert_array_equal(out.times, trace.times)


def test_window_validation():
    trace = make_trace()
    with pytest.raises(ValueError, match="duration"):
        inject_stall(trace, 0.5, 0.0)
    with pytest.raises(ValueError, match="outside"):
        inject_stall(trace, trace.duration_s + 1.0, 0.1)
    with pytest.raises(ValueError, match="factor"):
        inject_burst(trace, 0.5, 0.1, 0.5, np.random.default_rng(0))


def test_perturbations_do_not_mutate_the_input():
    trace = make_trace()
    before = trace.times.copy()
    inject_stall(trace, 0.5, 0.3)
    inject_burst(trace, 0.5, 0.3, 2.0, np.random.default_rng(0))
    np.testing.assert_array_equal(trace.times, before)
