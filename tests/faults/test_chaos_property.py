"""Property-based chaos: conservation holds for *generated* fault plans.

The scenario matrix checks hand-picked compositions; this test lets
hypothesis search the fault space — arbitrary stalls, storms, signal
loss, drift, slowdowns and pool contention at arbitrary windows — and
asserts the invariant that must survive all of them:

    produced == consumed + shed + in-buffer

i.e. degradation may *shed* items (accounted), but never *leak* them.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, run_scenario
from repro.faults.chaos import ChaosScenario
from repro.faults.spec import (
    BurstStorm,
    ClockDrift,
    ConsumerSlowdown,
    LostSignals,
    PoolContention,
    ProducerStall,
)
from repro.harness.params import StandardParams

#: Short runs keep the search affordable; windows are run fractions.
DURATION = 0.5
CONSUMERS = 2


def windows():
    """(start_fraction, duration_fraction) with the window inside the run."""
    return st.tuples(
        st.floats(0.05, 0.7), st.floats(0.05, 0.25)
    ).map(lambda w: (w[0] * DURATION, w[1] * DURATION))


def faults():
    stall = windows().flatmap(
        lambda w: st.booleans().map(
            lambda drop: ProducerStall(w[0], w[1], drop=drop)
        )
    )
    burst = st.tuples(windows(), st.floats(1.5, 4.0)).map(
        lambda t: BurstStorm(t[0][0], t[0][1], factor=t[1])
    )
    lost = st.tuples(windows(), st.floats(0.1, 0.9)).map(
        lambda t: LostSignals(t[0][0], t[0][1], prob=t[1])
    )
    drift = st.tuples(windows(), st.floats(-0.1, 0.1)).map(
        lambda t: ClockDrift(t[0][0], t[0][1], rate=t[1])
    )
    slow = st.tuples(windows(), st.floats(1.5, 5.0)).map(
        lambda t: ConsumerSlowdown(t[0][0], t[0][1], factor=t[1])
    )
    contention = st.tuples(windows(), st.integers(1, 10**6)).map(
        lambda t: PoolContention(t[0][0], t[0][1], slots=t[1])
    )
    return st.one_of(stall, burst, lost, drift, slow, contention)


def plans():
    return st.lists(faults(), min_size=0, max_size=3).map(FaultPlan)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(plan=plans(), seed=st.integers(0, 2**16))
def test_generated_fault_plans_conserve_items(plan, seed):
    scenario = ChaosScenario("generated", "hypothesis plan", lambda T, M: plan)
    params = StandardParams(duration_s=DURATION, seed=seed)
    result = run_scenario(scenario, params, CONSUMERS)
    assert result.conservation_ok, (
        f"leak under {plan.describe()}: produced={result.produced} != "
        f"consumed={result.consumed} + shed={result.items_shed} "
        f"+ buffered={result.buffered}"
    )
    # Shedding is the only sanctioned loss: the verdict never LEAKED.
    assert result.verdict != "LEAKED"
    # Per-consumer rows conserve individually, not just in aggregate.
    for row in result.per_consumer:
        assert row.conservation_ok, row.to_dict()


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(plan=plans(), seed=st.integers(0, 2**16))
def test_generated_fault_plans_conserve_on_baseline(plan, seed):
    scenario = ChaosScenario("generated", "hypothesis plan", lambda T, M: plan)
    params = StandardParams(duration_s=DURATION, seed=seed)
    result = run_scenario(scenario, params, CONSUMERS, impl="Sem")
    assert result.conservation_ok
    assert result.verdict != "LEAKED"
