"""Analytic end-to-end validation: hand-computed energy vs the stack.

For fully deterministic scenarios the machine's total energy is
computable with pencil and paper. These tests pin the whole pipeline —
trace replay → synchronisation → core dispatch → C/P-state accounting →
ledger integration — against closed-form expectations, to float
precision. If any layer drops a microjoule, these fail.
"""

import numpy as np
import pytest

from repro.cpu import (
    CState,
    CStateTable,
    Core,
    Machine,
    PState,
    PStateTable,
)
from repro.impls import BatchProcessing, PCConfig, SemaphorePair
from repro.power import EnergyLedger, PowerModel
from repro.sim import Environment, RandomStreams
from repro.workloads import Trace

# A deliberately round-numbered machine: 1 W active, 0.1 W idle,
# zero exit latency/context switch, 1 mJ per wakeup.
ACTIVE_W = 1.0
IDLE_W = 0.1
OMEGA_J = 1e-3


def build_rig():
    env = Environment()
    cstates = CStateTable(
        [CState("C1", 1, power_w=IDLE_W, exit_latency_s=0.0, min_residency_s=0.0)]
    )
    pstates = PStateTable([PState("p", 1e9, 1.0)])
    core = Core(env, 0, cstates, pstates, context_switch_s=0.0)
    model = PowerModel(
        capacitance_f=1e-9, static_active_w=0.0, wakeup_energy_j=OMEGA_J
    )
    ledger = EnergyLedger(env, model)
    core.add_listener(ledger)
    ledger.watch(core)

    class FakeTimers:  # impls take a TimerService; Sem/BP never use it
        pass

    return env, core, model, ledger, FakeTimers()


def regular(rate, duration):
    gap = 1.0 / rate
    times = np.arange(gap, duration, gap)
    return Trace(times[times < duration], duration, "analytic")


def test_sem_energy_exact():
    """Sem at 100 items/s for 10 s, 1 ms service, zero sync overhead.

    Each item: one wakeup (ω) + 1 ms active. Expected:
      active  = 999 items × 1 ms × 1 W            = 0.999 J
      wakeups = 999 × 1 mJ                        = 0.999 J
      idle    = (10 − 0.999) s × 0.1 W            = 0.9001 J
    """
    env, core, model, ledger, timers = build_rig()
    cfg = PCConfig(
        buffer_size=1000, service_time_s=1e-3, sync_overhead_s=0.0,
        max_response_latency_s=1.0,
    )
    impl = SemaphorePair(env, core, timers, regular(100.0, 10.0), cfg).start()
    env.run(until=10.0)
    ledger.settle()

    n = impl.trace.n_items
    assert n == 999
    assert impl.stats.consumed == n
    breakdown = ledger.total_breakdown()
    active_expected = n * 1e-3 * ACTIVE_W
    wakeup_expected = n * OMEGA_J
    idle_expected = (10.0 - n * 1e-3) * IDLE_W
    assert breakdown.active_j == pytest.approx(active_expected, rel=1e-9)
    assert breakdown.wakeup_j == pytest.approx(wakeup_expected, rel=1e-9)
    assert breakdown.idle_j == pytest.approx(idle_expected, rel=1e-9)
    assert ledger.total_energy_j() == pytest.approx(
        active_expected + wakeup_expected + idle_expected, rel=1e-9
    )


def test_bp_energy_exact():
    """BP with buffer 10 at 100 items/s for 10 s, 1 ms service.

    999 items → 99 full batches (990 items) + 9 left unbuffered-forever.
    Each batch: one wakeup, 1 µs wake-check + 10 ms of item work.
      active  = 99 × (10 ms + 1 µs) × 1 W = 0.990099 J
      wakeups = 99 × 1 mJ                 = 0.099 J
      idle    = (10 − 0.990099) × 0.1     = 0.9009901 J
    """
    env, core, model, ledger, timers = build_rig()
    cfg = PCConfig(
        buffer_size=10, service_time_s=1e-3, sync_overhead_s=0.0,
        max_response_latency_s=10.0,
    )
    impl = BatchProcessing(env, core, timers, regular(100.0, 10.0), cfg).start()
    env.run(until=10.0)
    ledger.settle()

    assert impl.stats.invocations == 99
    assert impl.stats.consumed == 990
    breakdown = ledger.total_breakdown()
    active_expected = 99 * (10 * 1e-3 + 1e-6) * ACTIVE_W
    assert breakdown.active_j == pytest.approx(active_expected, rel=1e-9)
    assert breakdown.wakeup_j == pytest.approx(99 * OMEGA_J, rel=1e-9)
    assert breakdown.idle_j == pytest.approx(
        (10.0 - (active_expected / ACTIVE_W)) * IDLE_W, rel=1e-9
    )


def test_item_latency_exact_for_bp():
    """BP's per-item latency is analytic on a regular trace.

    With buffer B and gap g, the k-th item of a batch (k = 1..B) waits
    (B − k)·g for the buffer to fill, then k·service for its turn
    (wake-check is processed before item 1).
    """
    env, core, model, ledger, timers = build_rig()
    B, g, s = 10, 1e-2, 1e-3
    cfg = PCConfig(
        buffer_size=B, service_time_s=s, sync_overhead_s=0.0,
        max_response_latency_s=10.0, track_latencies=True,
    )
    impl = BatchProcessing(env, core, timers, regular(1 / g, 10.0), cfg).start()
    env.run(until=10.0)
    first_batch = impl.stats.latencies[:B]
    expected = [(B - k) * g + 1e-6 + k * s for k in range(1, B + 1)]
    assert first_batch == pytest.approx(expected, rel=1e-9)
