"""Unit and property tests for C-state tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import CState, CStateTable, arndale_cstates


def make_table():
    return CStateTable(
        [
            CState("C1", 1, power_w=0.2, exit_latency_s=1e-6, min_residency_s=1e-5),
            CState("C2", 2, power_w=0.05, exit_latency_s=1e-4, min_residency_s=1e-3),
            CState("C3", 3, power_w=0.01, exit_latency_s=1e-3, min_residency_s=1e-2),
        ]
    )


def test_states_sorted_shallow_to_deep():
    table = CStateTable(
        [
            CState("C3", 3, 0.01, 1e-3, 1e-2),
            CState("C1", 1, 0.2, 1e-6, 1e-5),
        ]
    )
    assert [s.name for s in table.states] == ["C1", "C3"]


def test_shallowest_and_deepest():
    table = make_table()
    assert table.shallowest.name == "C1"
    assert table.deepest.name == "C3"


def test_select_unknown_idle_is_shallowest():
    assert make_table().select(None).name == "C1"


def test_select_short_idle_is_shallow():
    assert make_table().select(5e-5).name == "C1"


def test_select_medium_idle_is_c2():
    assert make_table().select(5e-3).name == "C2"


def test_select_long_idle_is_deepest():
    assert make_table().select(1.0).name == "C3"


def test_select_idle_below_all_residencies_is_shallowest():
    assert make_table().select(1e-9).name == "C1"


def test_empty_table_rejected():
    with pytest.raises(ValueError):
        CStateTable([])


def test_duplicate_indices_rejected():
    with pytest.raises(ValueError):
        CStateTable(
            [CState("A", 1, 0.2, 1e-6, 1e-5), CState("B", 1, 0.1, 1e-6, 1e-5)]
        )


def test_deeper_state_must_not_draw_more_power():
    with pytest.raises(ValueError):
        CStateTable(
            [CState("C1", 1, 0.1, 1e-6, 1e-5), CState("C2", 2, 0.2, 1e-4, 1e-3)]
        )


def test_cstate_index_zero_rejected():
    with pytest.raises(ValueError):
        CState("C0", 0, 1.0, 0.0, 0.0)


def test_cstate_negative_power_rejected():
    with pytest.raises(ValueError):
        CState("C1", 1, -0.1, 1e-6, 1e-5)


def test_arndale_table_is_valid_and_three_deep():
    table = arndale_cstates()
    assert len(table) == 3
    assert table.deepest.power_w < table.shallowest.power_w


@given(idle=st.floats(min_value=0, max_value=10.0))
@settings(max_examples=200, deadline=None)
def test_selected_state_residency_fits_idle_period(idle):
    table = make_table()
    state = table.select(idle)
    # Either the residency constraint holds, or no state fits and we
    # fall back to the shallowest.
    if state.index != table.shallowest.index:
        assert state.min_residency_s <= idle


@given(a=st.floats(min_value=0, max_value=10.0), b=st.floats(min_value=0, max_value=10.0))
@settings(max_examples=200, deadline=None)
def test_selection_is_monotone_in_idle_duration(a, b):
    """Longer expected idle never selects a shallower (hungrier) state."""
    table = make_table()
    lo, hi = min(a, b), max(a, b)
    assert table.select(hi).index >= table.select(lo).index
