"""Unit tests for the Machine container."""

import pytest

from repro.cpu import CoreListener, Machine, OndemandGovernor, PARKED
from repro.sim import Environment, RandomStreams, SimulationError


def test_machine_default_two_cores():
    env = Environment()
    machine = Machine(env)
    assert machine.n_cores == 2
    assert machine.core(0).core_id == 0
    assert machine.core(1).core_id == 1


def test_machine_core_bounds_checked():
    env = Environment()
    machine = Machine(env, n_cores=2)
    with pytest.raises(SimulationError):
        machine.core(2)
    with pytest.raises(SimulationError):
        machine.core(-1)


def test_machine_needs_a_core():
    with pytest.raises(SimulationError):
        Machine(Environment(), n_cores=0)


def test_machine_wide_counters_aggregate():
    env = Environment()
    machine = Machine(env, n_cores=2)

    def task(env, core):
        yield from core.execute("t", 1e-3)

    env.process(task(env, machine.core(0)))
    env.process(task(env, machine.core(1)))
    env.run()
    assert machine.total_wakeups == 2
    assert machine.total_busy_s > 0


def test_add_listener_reaches_all_cores():
    env = Environment()
    machine = Machine(env, n_cores=3)

    class Counter(CoreListener):
        def __init__(self):
            self.wakeups = 0

        def on_wakeup(self, core, now, owner, from_cstate):
            self.wakeups += 1

    counter = Counter()
    machine.add_listener(counter)

    def task(env, core):
        yield from core.execute("t", 1e-3)

    for i in range(3):
        env.process(task(env, machine.core(i)))
    env.run()
    assert counter.wakeups == 3


def test_park_unused_cores():
    env = Environment()
    machine = Machine(env, n_cores=4)
    machine.park_unused([0, 1])
    assert machine.core(0).state != PARKED
    assert machine.core(1).state != PARKED
    assert machine.core(2).state == PARKED
    assert machine.core(3).state == PARKED


def test_custom_governor_factory_applied():
    env = Environment()
    machine = Machine(env, governor_factory=OndemandGovernor)
    assert all(isinstance(c.governor, OndemandGovernor) for c in machine.cores)


def test_machine_timer_jitter_reproducible_with_seed():
    def run_once():
        env = Environment()
        machine = Machine(env, streams=RandomStreams(seed=99))
        out = []

        def proc(env):
            late = yield from machine.timers.nanosleep(1e-4)
            out.append(late)

        env.process(proc(env))
        env.run()
        return out[0]

    assert run_once() == run_once()
