"""Tests for cluster-level idle gating."""

import pytest

from repro.cpu import ClusterIdleModel, ClusterParams, Machine
from repro.sim import Environment, RandomStreams


def make_cluster(env, n_cores=2, **params):
    machine = Machine(env, n_cores=n_cores, streams=RandomStreams(seed=0))
    cluster = ClusterIdleModel(
        env, machine.cores, ClusterParams(**params) if params else None
    )
    machine.add_listener(cluster)
    return machine, cluster


def hint_all(machine, when):
    for core in machine.cores:
        core.set_next_wake_hint(when)


def test_params_validation():
    with pytest.raises(ValueError):
        ClusterParams(gate_power_saving_w=-1)
    with pytest.raises(ValueError):
        ClusterParams(min_gate_residency_s=0.0)
    env = Environment()
    with pytest.raises(ValueError):
        ClusterIdleModel(env, [])


def test_long_hinted_idle_window_gates():
    env = Environment()
    machine, cluster = make_cluster(env)
    hint_all(machine, 1.0)  # both cores expect to sleep 1 s
    env.run(until=1.0)
    cluster.settle()
    assert cluster.gate_cycles == 1
    assert cluster.gated_time_s == pytest.approx(1.0)
    expected = 1.0 * 0.08 - 400e-6
    assert cluster.gated_energy_saved_j() == pytest.approx(expected)


def test_unhinted_idle_does_not_gate():
    env = Environment()
    machine, cluster = make_cluster(env)
    env.run(until=1.0)
    cluster.settle()
    assert cluster.gate_cycles == 0
    assert cluster.gated_energy_saved_j() == 0.0


def test_short_hint_blocks_gating():
    env = Environment()
    machine, cluster = make_cluster(env)
    hint_all(machine, env.now + 1e-3)  # below the 10 ms break-even
    env.run(until=1.0)
    cluster.settle()
    assert cluster.gate_cycles == 0


def test_activity_on_any_core_ends_the_window():
    env = Environment()
    machine, cluster = make_cluster(env)
    hint_all(machine, 10.0)

    def task(env):
        yield env.timeout(0.5)
        yield from machine.core(1).execute("t", 1e-3)

    env.process(task(env))
    env.run(until=2.0)
    cluster.settle()
    # Window 1: [0, 0.5) gated; window 2 reopens after the task.
    assert cluster.gate_cycles >= 1
    first = cluster.gated_windows[0]
    assert first[1] - first[0] == pytest.approx(0.5, rel=1e-3)


def test_alignment_beats_interleaving():
    """The cluster-level argument for latching: two cores whose busy
    periods coincide leave longer joint-idle windows than two cores
    interleaving the same work."""

    def run(offsets):
        env = Environment()
        machine, cluster = make_cluster(env)
        hint_all(machine, 100.0)

        def periodic(env, core, phase):
            yield env.timeout(phase)
            while True:
                yield from core.execute("t", 5e-3)
                hint_all(machine, env.now + 0.1)
                yield env.timeout(0.1 - 5e-3)

        for core, phase in zip(machine.cores, offsets):
            env.process(periodic(env, core, phase))
        env.run(until=2.0)
        cluster.settle()
        return cluster.gated_time_s

    aligned = run([0.0, 0.0])
    interleaved = run([0.0, 0.05])
    assert aligned > interleaved


def test_settle_reopens_window():
    env = Environment()
    machine, cluster = make_cluster(env)
    hint_all(machine, 10.0)
    env.run(until=0.5)
    cluster.settle()
    env.run(until=1.0)
    cluster.settle()
    assert cluster.gate_cycles == 2
    assert cluster.gated_time_s == pytest.approx(1.0)
