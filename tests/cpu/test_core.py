"""Unit tests for the simulated core: dispatch, wakeups, idle logic."""

import pytest

from repro.cpu import (
    ACTIVE,
    CoreListener,
    CState,
    CStateTable,
    Core,
    IDLE,
    PARKED,
    PState,
    PStateTable,
)
from repro.sim import Environment, SimulationError


def simple_cstates():
    return CStateTable(
        [
            CState("C1", 1, power_w=0.1, exit_latency_s=1e-4, min_residency_s=1e-3),
            CState("C2", 2, power_w=0.01, exit_latency_s=1e-3, min_residency_s=1e-2),
        ]
    )


def simple_pstates():
    return PStateTable([PState("half", 1e9, 1.0), PState("full", 2e9, 1.2)])


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def core(env):
    return Core(env, 0, simple_cstates(), simple_pstates(), context_switch_s=0.0)


class Recorder(CoreListener):
    def __init__(self):
        self.state_changes = []
        self.wakeups = []
        self.executes = []
        self.yields = []
        self.task_wakeups = []

    def on_state_change(self, core, now, old, new, cstate, pstate):
        self.state_changes.append((now, old, new))

    def on_wakeup(self, core, now, owner, from_cstate):
        self.wakeups.append((now, owner, from_cstate.name))

    def on_execute(self, core, now, owner, duration):
        self.executes.append((now, owner, duration))

    def on_yield(self, core, now, owner):
        self.yields.append((now, owner))

    def on_task_wakeup(self, core, now, owner):
        self.task_wakeups.append((now, owner))


def test_core_starts_idle(core):
    assert core.state == IDLE
    assert core.cstate is not None
    assert core.total_wakeups == 0


def test_execute_wakes_idle_core_and_counts(env, core):
    rec = Recorder()
    core.add_listener(rec)

    def task(env):
        yield from core.execute("t1", 1e-3, after_block=True)

    env.process(task(env))
    env.run()
    assert core.total_wakeups == 1
    assert rec.wakeups == [(0.0, "t1", "C1")]
    assert rec.task_wakeups == [(0.0, "t1")]
    assert core.state == IDLE  # back to idle after the slice


def test_exit_latency_delays_execution(env, core):
    done = []

    def task(env):
        yield from core.execute("t1", 1e-3)
        done.append(env.now)

    env.process(task(env))
    env.run()
    # 1e-4 exit latency (C1) + 1e-3 work at nominal speed.
    assert done == [pytest.approx(1.1e-3)]


def test_execution_duration_returned(env, core):
    out = []

    def task(env):
        d = yield from core.execute("t1", 2e-3)
        out.append(d)

    env.process(task(env))
    env.run()
    # Work plus the C1 exit latency (the core is powered while waking).
    assert out == [pytest.approx(2e-3 + 1e-4)]


def test_back_to_back_requests_cause_single_wakeup(env, core):
    def task(env, n):
        for i in range(n):
            yield from core.execute("t1", 1e-3)

    env.process(task(env, 5))
    env.run()
    # The queue never empties *between* our requests only if requests are
    # enqueued before going idle; here the task re-requests after each
    # slice completes, and dispatch happens synchronously at slice end —
    # but the task only re-enqueues after resuming. Each new request
    # therefore finds the core idle again: 5 wakeups. This documents the
    # semantics: staying awake requires queued work, as on real hardware.
    assert core.total_wakeups == 5


def test_overlapping_requests_share_one_wakeup(env, core):
    def task(env, tag):
        yield from core.execute(tag, 1e-3)

    env.process(task(env, "a"))
    env.process(task(env, "b"))
    env.process(task(env, "c"))
    env.run()
    assert core.total_wakeups == 1  # b and c latch onto a's wakeup


def test_fifo_execution_order(env, core):
    rec = Recorder()
    core.add_listener(rec)

    def task(env, tag):
        yield from core.execute(tag, 1e-3)

    for tag in ("a", "b", "c"):
        env.process(task(env, tag))
    env.run()
    assert [o for (_, o, _) in rec.executes] == ["a", "b", "c"]


def test_busy_seconds_accumulate(env, core):
    def task(env):
        yield from core.execute("t", 2e-3)
        yield from core.execute("t", 3e-3)

    env.process(task(env))
    env.run()
    # 5 ms of work + 2 wakeups' worth of exit latency (1e-4 each; the
    # core idles between the two back-to-back requests).
    assert core.total_busy_s == pytest.approx(5e-3 + 2e-4)


def test_context_switch_cost_charged(env):
    core = Core(
        env, 0, simple_cstates(), simple_pstates(), context_switch_s=1e-4
    )

    def task(env):
        yield from core.execute("t", 1e-3)

    env.process(task(env))
    env.run()
    # work + context switch + exit latency
    assert core.total_busy_s == pytest.approx(1e-3 + 1e-4 + 1e-4)


def test_negative_cpu_time_rejected(env, core):
    def task(env):
        yield from core.execute("t", -1.0)

    p = env.process(task(env))
    with pytest.raises(SimulationError):
        env.run(until=p)


def test_wake_hint_selects_deeper_state(env, core):
    # Long expected idle -> C2; no hint -> shallow C1.
    assert core.cstate.name == "C1"
    core.set_next_wake_hint(env.now + 1.0)
    assert core.cstate.name == "C2"
    core.set_next_wake_hint(None)
    assert core.cstate.name == "C1"


def test_wake_hint_in_past_falls_back_to_shallow(env, core):
    core.set_next_wake_hint(env.now - 5.0)
    assert core.cstate.name == "C1"


def test_deeper_state_costs_more_exit_latency(env, core):
    core.set_next_wake_hint(env.now + 1.0)  # park in C2 (1e-3 exit)
    done = []

    def task(env):
        yield from core.execute("t", 1e-3)
        done.append(env.now)

    env.process(task(env))
    env.run()
    assert done == [pytest.approx(2e-3)]  # 1e-3 exit + 1e-3 work


def test_park_and_unpark(env, core):
    core.park()
    assert core.state == PARKED
    assert core.cstate is core.cstates.deepest
    core.unpark()
    assert core.state == IDLE


def test_park_busy_core_rejected(env, core):
    def task(env):
        yield from core.execute("t", 1.0)

    env.process(task(env))
    env.run(until=0.5)
    with pytest.raises(SimulationError):
        core.park()


def test_unpark_idle_core_rejected(env, core):
    with pytest.raises(SimulationError):
        core.unpark()


def test_execute_on_parked_core_unparks_it(env, core):
    core.park()

    def task(env):
        yield from core.execute("t", 1e-3)

    env.process(task(env))
    env.run()
    assert core.total_wakeups == 1
    assert core.state == IDLE


def test_state_change_notifications(env, core):
    rec = Recorder()
    core.add_listener(rec)

    def task(env):
        yield from core.execute("t", 1e-3)

    env.process(task(env))
    env.run()
    transitions = [(old, new) for (_, old, new) in rec.state_changes]
    assert transitions == [(IDLE, ACTIVE), (ACTIVE, IDLE)]


def test_cancel_pending_request(env, core):
    def long_task(env):
        yield from core.execute("long", 1.0)

    env.process(long_task(env))
    env.run(until=0.1)
    grant = env.event()
    core._queue.append((grant, "doomed", env.now))
    assert core.cancel(grant)
    assert not core.cancel(grant)
    env.run()
    assert core.state == IDLE  # queue drained without deadlock


def test_sched_yield_notifies_listeners(env, core):
    rec = Recorder()
    core.add_listener(rec)
    core.sched_yield("spinner")
    assert rec.yields == [(0.0, "spinner")]


def test_after_block_false_does_not_count_task_wakeup(env, core):
    rec = Recorder()
    core.add_listener(rec)

    def spinner(env):
        for _ in range(10):
            yield from core.execute("s", 1e-4, after_block=False)

    env.process(spinner(env))
    env.run()
    assert rec.task_wakeups == []
