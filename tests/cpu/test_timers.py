"""Unit tests for the timer subsystem (nanosleep jitter vs signals)."""

import numpy as np
import pytest

from repro.cpu import PeriodicSignalTimer, TimerService
from repro.sim import Environment, SimulationError


def make_timers(env, **kwargs):
    rng = np.random.default_rng(12345)
    return TimerService(env, rng, **kwargs)


def test_nanosleep_never_early():
    env = Environment()
    timers = make_timers(env)
    stamps = []

    def proc(env):
        for _ in range(50):
            start = env.now
            yield from timers.nanosleep(1e-4)
            stamps.append(env.now - start)

    env.process(proc(env))
    env.run()
    assert all(actual >= 1e-4 for actual in stamps)


def test_nanosleep_lateness_returned():
    env = Environment()
    timers = make_timers(env)
    out = []

    def proc(env):
        late = yield from timers.nanosleep(1e-4)
        out.append((late, env.now))

    env.process(proc(env))
    env.run()
    late, now = out[0]
    assert now == pytest.approx(1e-4 + late)
    assert late >= timers.nanosleep_overhead_s


def test_nanosleep_with_zero_jitter_is_exact_plus_overhead():
    env = Environment()
    timers = make_timers(env, nanosleep_overhead_s=5e-6, nanosleep_jitter_s=0.0)

    def proc(env):
        yield from timers.nanosleep(1e-3)

    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(1e-3 + 5e-6)


def test_signal_alarm_more_accurate_than_nanosleep():
    env = Environment()
    timers = make_timers(env)
    lates = {"nano": [], "sig": []}

    def proc(env):
        for _ in range(200):
            late = yield from timers.nanosleep(1e-4)
            lates["nano"].append(late)
            skew = yield from timers.signal_alarm(1e-4)
            lates["sig"].append(skew)

    env.process(proc(env))
    env.run()
    assert np.mean(lates["sig"]) < np.mean(lates["nano"])


def test_negative_durations_rejected():
    env = Environment()
    timers = make_timers(env)
    with pytest.raises(SimulationError):
        next(iter(timers.nanosleep(-1.0)))
    with pytest.raises(SimulationError):
        next(iter(timers.signal_alarm(-1.0)))


def test_timer_parameter_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        make_timers(env, nanosleep_jitter_s=-1.0)


# -- periodic signal timer -------------------------------------------------


def test_periodic_timer_fires_on_absolute_grid():
    env = Environment()
    timers = make_timers(env, signal_jitter_s=0.0)
    timer = PeriodicSignalTimer(timers, period_s=0.01)
    deadlines = []

    def proc(env):
        for _ in range(5):
            d = yield from timer.next_tick()
            deadlines.append(d)

    env.process(proc(env))
    env.run()
    assert deadlines == pytest.approx([0.01, 0.02, 0.03, 0.04, 0.05])
    assert timer.ticks_delivered == 5


def test_periodic_timer_skips_missed_ticks():
    env = Environment()
    timers = make_timers(env, signal_jitter_s=0.0)
    timer = PeriodicSignalTimer(timers, period_s=0.01)
    deadlines = []

    def proc(env):
        d = yield from timer.next_tick()
        deadlines.append(d)
        yield env.timeout(0.035)  # sleep through ticks at 0.02, 0.03, 0.04
        d = yield from timer.next_tick()
        deadlines.append(d)

    env.process(proc(env))
    env.run()
    assert deadlines == pytest.approx([0.01, 0.05])


def test_periodic_timer_does_not_drift():
    """Relative nanosleep drifts; the absolute-grid timer does not."""
    env = Environment()
    timers = make_timers(env, signal_jitter_s=0.0)
    timer = PeriodicSignalTimer(timers, period_s=0.01)

    def proc(env):
        for _ in range(100):
            yield from timer.next_tick()

    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(1.0)  # exactly 100 periods


def test_nanosleep_periodic_loop_drifts_late():
    env = Environment()
    timers = make_timers(
        env,
        nanosleep_overhead_s=1e-5,
        nanosleep_jitter_s=0.0,
        nanosleep_tail_prob=0.0,
    )

    def proc(env):
        for _ in range(100):
            yield from timers.nanosleep(0.01)

    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(1.0 + 100 * 1e-5)  # accumulated lateness


def test_periodic_timer_next_deadline_strictly_future():
    env = Environment()
    timers = make_timers(env, signal_jitter_s=0.0)
    timer = PeriodicSignalTimer(timers, period_s=0.01, base_s=0.0)
    assert timer.next_deadline() == pytest.approx(0.01)


def test_periodic_timer_invalid_period():
    env = Environment()
    timers = make_timers(env)
    with pytest.raises(SimulationError):
        PeriodicSignalTimer(timers, period_s=0.0)


def test_tick_event_and_confirm_protocol():
    env = Environment()
    timers = make_timers(env, signal_jitter_s=0.0)
    timer = PeriodicSignalTimer(timers, period_s=0.01)
    deadlines = []

    def proc(env):
        ev = timer.tick_event()
        yield ev
        timer.confirm()
        deadlines.append(ev.value)
        # Unconsumed tick: arm, abandon, re-arm — no double counting.
        timer.tick_event()
        ev2 = timer.tick_event()
        yield ev2
        timer.confirm()
        deadlines.append(ev2.value)

    env.process(proc(env))
    env.run()
    assert deadlines == pytest.approx([0.01, 0.02])
    assert timer.ticks_delivered == 2


def test_confirm_without_pending_tick_raises():
    env = Environment()
    timers = make_timers(env)
    timer = PeriodicSignalTimer(timers, period_s=0.01)
    with pytest.raises(SimulationError, match="without a pending"):
        timer.confirm()


def test_nanosleep_heavy_tail_occasionally_fires():
    env = Environment()
    timers = make_timers(
        env,
        nanosleep_overhead_s=0.0,
        nanosleep_jitter_s=0.0,
        nanosleep_tail_prob=0.5,
        nanosleep_tail_scale_s=1e-3,
    )
    draws = [timers.nanosleep_lateness() for _ in range(400)]
    tails = sum(1 for d in draws if d > 0)
    assert 100 < tails < 300  # ≈ half, well away from 0 and all


# -- fault hooks: lost signals and clock drift ----------------------------------


def test_no_rng_draw_when_loss_disabled():
    """Fault-free services must stay bit-identical to the pre-fault code:
    signal_lost() with probability 0 may not consume any randomness."""
    env = Environment()
    timers = make_timers(env)
    before = timers.rng.bit_generator.state
    for _ in range(10):
        assert timers.signal_lost() is False
    assert timers.rng.bit_generator.state == before


def test_slot_alarm_returns_none_when_signal_lost():
    env = Environment()
    timers = make_timers(env, signal_loss_prob=1.0)
    assert timers.slot_alarm(0.5) is None
    assert timers.signals_lost == 1


def test_slot_alarm_delivers_at_deadline_plus_skew():
    env = Environment()
    timers = make_timers(env, signal_jitter_s=0.0)
    fired = []

    def proc(env):
        yield timers.slot_alarm(0.25)
        fired.append(env.now)

    env.process(proc(env))
    env.run(until=1.0)
    assert fired == [pytest.approx(0.25)]


def test_clock_drift_stretches_armed_delays():
    env = Environment()
    timers = make_timers(env, signal_jitter_s=0.0, clock_drift_rate=0.1)
    assert timers.drifted(1.0) == pytest.approx(1.1)
    fired = []

    def proc(env):
        yield timers.slot_alarm(0.2)
        fired.append(env.now)

    env.process(proc(env))
    env.run(until=1.0)
    assert fired == [pytest.approx(0.22)]


def test_loss_prob_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        make_timers(env, signal_loss_prob=1.5)
    with pytest.raises(SimulationError):
        make_timers(env, clock_drift_rate=-1.0)


def test_periodic_timer_self_heals_one_period_after_lost_tick():
    env = Environment()
    timers = make_timers(env, signal_jitter_s=0.0, signal_loss_prob=1.0)
    timer = PeriodicSignalTimer(timers, period_s=0.01)
    ticks = []

    def proc(env):
        for _ in range(3):
            deadline = yield from timer.next_tick()
            ticks.append((env.now, deadline))

    env.process(proc(env))
    env.run(until=0.1)
    # Every armed tick is swallowed, so delivery slips one period each
    # time — the timer never strands its caller.
    for now, deadline in ticks:
        assert now == pytest.approx(deadline)
    assert [d for _, d in ticks] == [
        pytest.approx(0.02),
        pytest.approx(0.04),
        pytest.approx(0.06),
    ]
