"""Unit tests for DVFS governors."""

import pytest

from repro.cpu import (
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    PState,
    PStateTable,
)


@pytest.fixture
def table():
    return PStateTable(
        [
            PState("slow", 0.5e9, 0.9),
            PState("mid", 1.0e9, 1.0),
            PState("fast", 2.0e9, 1.2),
        ]
    )


def test_performance_governor_always_fastest(table):
    gov = PerformanceGovernor(table)
    assert gov.select(0.0) is table.fastest
    gov.on_busy(1.0, 0.0)  # no effect
    assert gov.select(1.0) is table.fastest


def test_powersave_governor_always_slowest(table):
    gov = PowersaveGovernor(table)
    assert gov.select(0.0) is table.slowest


def test_ondemand_idle_core_selects_slowest(table):
    gov = OndemandGovernor(table, window_s=0.1)
    assert gov.select(0.0) is table.slowest


def test_ondemand_full_load_selects_fastest(table):
    gov = OndemandGovernor(table, window_s=0.1)
    gov.on_busy(0.1, 0.1)  # the whole window was busy
    assert gov.select(0.1) is table.fastest


def test_ondemand_partial_load_scales_proportionally(table):
    gov = OndemandGovernor(table, window_s=0.1)
    gov.on_busy(0.1, 0.04)  # 40% of 2GHz -> mid (1GHz) suffices
    assert gov.select(0.1).name == "mid"


def test_ondemand_window_slides(table):
    gov = OndemandGovernor(table, window_s=0.1)
    gov.on_busy(0.1, 0.1)
    assert gov.select(0.1) is table.fastest
    # Much later, that burst has left the window.
    assert gov.select(10.0) is table.slowest


def test_ondemand_utilization_clamped_to_one(table):
    gov = OndemandGovernor(table, window_s=0.1)
    gov.on_busy(0.1, 0.05)
    gov.on_busy(0.1, 0.09)
    assert gov.utilization(0.1) == 1.0


def test_ondemand_yield_bias_steps_down(table):
    gov = OndemandGovernor(table, window_s=0.1, yield_rate_threshold=100.0)
    # Full load but also yielding far above threshold.
    gov.on_busy(0.1, 0.1)
    for i in range(30):  # 300 yields/s > 100/s threshold
        gov.on_yield(0.1)
    chosen = gov.select(0.1)
    assert chosen.freq_hz < table.fastest.freq_hz


def test_ondemand_yield_bias_caps_at_three_steps(table):
    gov = OndemandGovernor(table, window_s=0.1, yield_rate_threshold=1.0)
    gov.on_busy(0.1, 0.1)
    for _ in range(1000):
        gov.on_yield(0.1)
    # With only 3 states, 3 capped steps land at the slowest.
    assert gov.select(0.1) is table.slowest


def test_ondemand_yield_rate_measured(table):
    gov = OndemandGovernor(table, window_s=0.5)
    for _ in range(10):
        gov.on_yield(0.5)
    assert gov.yield_rate(0.5) == pytest.approx(20.0)


def test_ondemand_validation(table):
    with pytest.raises(ValueError):
        OndemandGovernor(table, window_s=0.0)
    with pytest.raises(ValueError):
        OndemandGovernor(table, up_threshold=0.0)
