"""Tests for the acquire/hold API (busy-wait support)."""

import pytest

from repro.cpu import CState, CStateTable, Core, PState, PStateTable
from repro.sim import Environment, SimulationError


def make_core(env, exit_latency=0.0, ctx=0.0):
    cstates = CStateTable(
        [CState("C1", 1, power_w=0.1, exit_latency_s=exit_latency, min_residency_s=0.0)]
    )
    pstates = PStateTable([PState("p", 1e9, 1.0)])
    return Core(env, 0, cstates, pstates, context_switch_s=ctx)


def test_hold_keeps_core_active_across_waits():
    env = Environment()
    core = make_core(env)

    def spinner(env, wake):
        hold = yield from core.acquire("s")
        yield from hold.busy_until(wake, reeval_s=0.1)
        yield from hold.busy(0.01)
        hold.release()

    wake = env.event()

    def trigger(env):
        yield env.timeout(1.0)
        assert core.state == "active"  # still spinning, never idled
        wake.succeed()

    env.process(spinner(env, wake))
    env.process(trigger(env))
    env.run()
    assert core.total_wakeups == 1
    assert core.state == "idle"


def test_busy_until_accounts_spin_time():
    env = Environment()
    core = make_core(env)
    out = []

    def spinner(env, wake):
        hold = yield from core.acquire("s")
        spent = yield from hold.busy_until(wake, reeval_s=0.25)
        out.append(spent)
        hold.release()

    wake = env.event()

    def trigger(env):
        yield env.timeout(1.0)
        wake.succeed()

    env.process(spinner(env, wake))
    env.process(trigger(env))
    env.run()
    assert out[0] == pytest.approx(1.0)
    assert core.total_busy_s == pytest.approx(1.0)


def test_busy_until_already_triggered_event_returns_fast():
    env = Environment()
    core = make_core(env)
    out = []

    def proc(env):
        ev = env.event()
        ev.succeed()
        hold = yield from core.acquire("s")
        spent = yield from hold.busy_until(ev)
        out.append(spent)
        hold.release()

    env.process(proc(env))
    env.run()
    assert out[0] == pytest.approx(0.0)


def test_busy_until_reports_yields():
    env = Environment()
    core = make_core(env)
    yields = []
    core.governor.on_yield = lambda now, count=1: yields.append(count)

    def spinner(env, wake):
        hold = yield from core.acquire("s")
        yield from hold.busy_until(wake, reeval_s=0.1, yield_rate_hz=100.0)
        hold.release()

    wake = env.event()

    def trigger(env):
        yield env.timeout(1.0)
        wake.succeed()

    env.process(spinner(env, wake))
    env.process(trigger(env))
    env.run()
    assert sum(yields) == pytest.approx(100, abs=15)


def test_hold_operations_after_release_raise():
    env = Environment()
    core = make_core(env)

    def proc(env):
        hold = yield from core.acquire("s")
        hold.release()
        yield from hold.busy(0.1)

    p = env.process(proc(env))
    with pytest.raises(SimulationError, match="released"):
        env.run(until=p)


def test_queued_request_waits_for_hold_release():
    env = Environment()
    core = make_core(env)
    order = []

    def holder(env):
        hold = yield from core.acquire("h")
        yield from hold.busy(1.0)
        order.append(("holder-done", env.now))
        hold.release()

    def other(env):
        yield env.timeout(0.1)
        yield from core.execute("o", 0.5)
        order.append(("other-done", env.now))

    env.process(holder(env))
    env.process(other(env))
    env.run()
    assert order == [("holder-done", 1.0), ("other-done", 1.5)]
    assert core.total_wakeups == 1  # "other" latched onto the active core


def test_startup_costs_charged_once():
    env = Environment()
    core = make_core(env, exit_latency=0.1, ctx=0.05)

    def proc(env):
        hold = yield from core.acquire("s")
        d1 = yield from hold.busy(1.0)
        d2 = yield from hold.busy(1.0)
        hold.release()
        return (d1, d2)

    p = env.process(proc(env))
    d1, d2 = env.run(until=p)
    assert d1 == pytest.approx(1.15)  # latency + ctx + work
    assert d2 == pytest.approx(1.0)  # just work


def test_negative_busy_rejected():
    env = Environment()
    core = make_core(env)

    def proc(env):
        hold = yield from core.acquire("s")
        yield from hold.busy(-1.0)

    p = env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run(until=p)
