"""Unit and property tests for P-state tables and the DVFS power law."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import PState, PStateTable, arndale_pstates


def make_table():
    return PStateTable(
        [
            PState("slow", 0.5e9, 0.9),
            PState("mid", 1.0e9, 1.0),
            PState("fast", 2.0e9, 1.2),
        ]
    )


def test_states_sorted_slow_to_fast():
    table = PStateTable([PState("b", 2e9, 1.2), PState("a", 1e9, 1.0)])
    assert [s.name for s in table.states] == ["a", "b"]


def test_nominal_is_fastest():
    table = make_table()
    assert table.nominal is table.fastest
    assert table.fastest.name == "fast"
    assert table.slowest.name == "slow"


def test_dynamic_power_formula():
    # Pd = C * V^2 * f
    state = PState("x", 1e9, 1.1)
    assert state.dynamic_power_w(1e-9) == pytest.approx(1e-9 * 1.1**2 * 1e9)


def test_dynamic_power_increases_with_frequency_and_voltage():
    table = make_table()
    powers = [s.dynamic_power_w(1e-9) for s in table.states]
    assert powers == sorted(powers)
    assert powers[0] < powers[-1]


def test_speedup_relative_to_nominal():
    table = make_table()
    assert table.speedup(table.fastest) == 1.0
    assert table.speedup(table.slowest) == pytest.approx(0.25)


def test_step_down_and_up_clamp():
    table = make_table()
    assert table.step_down(table.slowest).name == "slow"
    assert table.step_up(table.fastest).name == "fast"
    assert table.step_down(table.fastest).name == "mid"
    assert table.step_down(table.fastest, steps=5).name == "slow"
    assert table.step_up(table.slowest).name == "mid"


def test_for_utilization_full_load_is_fastest():
    assert make_table().for_utilization(1.0).name == "fast"


def test_for_utilization_zero_load_is_slowest():
    assert make_table().for_utilization(0.0).name == "slow"


def test_for_utilization_picks_slowest_sufficient():
    table = make_table()
    # 40% of 2GHz nominal = 0.8GHz -> "mid" (1GHz) suffices, "slow" does not.
    assert table.for_utilization(0.4).name == "mid"


def test_for_utilization_out_of_range_rejected():
    with pytest.raises(ValueError):
        make_table().for_utilization(1.5)


def test_empty_table_rejected():
    with pytest.raises(ValueError):
        PStateTable([])


def test_duplicate_frequencies_rejected():
    with pytest.raises(ValueError):
        PStateTable([PState("a", 1e9, 1.0), PState("b", 1e9, 1.1)])


def test_faster_state_at_lower_voltage_rejected():
    with pytest.raises(ValueError):
        PStateTable([PState("a", 1e9, 1.2), PState("b", 2e9, 1.0)])


def test_pstate_validation():
    with pytest.raises(ValueError):
        PState("x", 0.0, 1.0)
    with pytest.raises(ValueError):
        PState("x", 1e9, 0.0)


def test_arndale_table_spans_published_range():
    table = arndale_pstates()
    assert table.slowest.freq_hz == pytest.approx(200e6)
    assert table.fastest.freq_hz == pytest.approx(1700e6)


@given(util=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=200, deadline=None)
def test_for_utilization_always_covers_demand(util):
    """The chosen frequency is never below the demanded capacity
    (unless even the fastest state cannot cover it, impossible here)."""
    table = make_table()
    state = table.for_utilization(util)
    assert state.freq_hz >= util * table.nominal.freq_hz - 1e-6


@given(a=st.floats(min_value=0.0, max_value=1.0), b=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=200, deadline=None)
def test_for_utilization_is_monotone(a, b):
    table = make_table()
    lo, hi = min(a, b), max(a, b)
    assert table.for_utilization(hi).freq_hz >= table.for_utilization(lo).freq_hz
