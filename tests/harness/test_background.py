"""Tests for the background kernel load (paper §VI-C realism)."""

import pytest

from repro.cpu import Machine
from repro.harness import BackgroundKernelLoad
from repro.power import EnergyLedger, PowerModel
from repro.sim import Environment, RandomStreams


def build(tick_hz=250.0, daemon_rate_hz=40.0):
    env = Environment()
    machine = Machine(env, n_cores=2, streams=RandomStreams(seed=0))
    model = PowerModel()
    ledger = EnergyLedger(env, model)
    machine.add_listener(ledger)
    for core in machine.cores:
        ledger.watch(core)
    bg = BackgroundKernelLoad(
        env,
        machine.core(1),
        machine.timers,
        RandomStreams(seed=0).stream("bg"),
        tick_hz=tick_hz,
        daemon_rate_hz=daemon_rate_hz,
    ).start()
    return env, machine, ledger, bg


def test_tick_rate_honoured():
    env, machine, ledger, bg = build(tick_hz=100.0, daemon_rate_hz=0.0)
    env.run(until=2.0)
    # The loop sleeps a full period *between* executions, so each tick's
    # run time (~0.13 ms) stretches the effective period slightly.
    assert bg.ticks == pytest.approx(200, rel=0.05)
    assert bg.daemon_bursts == 0


def test_daemons_fire_at_mean_rate():
    env, machine, ledger, bg = build(tick_hz=10.0, daemon_rate_hz=50.0)
    env.run(until=4.0)
    assert bg.daemon_bursts == pytest.approx(200, rel=0.25)


def test_background_stays_off_the_consumer_core():
    env, machine, ledger, bg = build()
    env.run(until=2.0)
    assert machine.core(0).total_busy_s == 0.0
    assert machine.core(1).total_busy_s > 0


def test_background_power_magnitude():
    """The load lands in the hundreds-of-mW band the §VI-C story needs."""
    env, machine, ledger, bg = build()
    env.run(until=2.0)
    ledger.settle()
    # Subtract the pure idle floor of both cores.
    idle_floor = sum(
        ledger.model.baseline_power_w(core) for core in machine.cores
    )
    extra = ledger.average_power_w(2.0) - idle_floor
    assert 0.05 < extra < 0.5


def test_background_validation():
    env = Environment()
    machine = Machine(env, n_cores=1)
    with pytest.raises(ValueError):
        BackgroundKernelLoad(
            env,
            machine.core(0),
            machine.timers,
            RandomStreams(seed=0).stream("bg"),
            tick_hz=0.0,
        )


def test_background_reproducible():
    def run():
        env, machine, ledger, bg = build()
        env.run(until=1.5)
        ledger.settle()
        return (bg.ticks, bg.daemon_bursts, ledger.total_energy_j())

    assert run() == run()
