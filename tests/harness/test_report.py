"""Tests for the one-command full report."""

import pytest

from repro.harness import StandardParams, build_full_report


@pytest.mark.slow
def test_full_report_builds_and_renders(tmp_path):
    params = StandardParams(duration_s=0.8, replicates=1, seed=17)
    messages = []
    report = build_full_report(params, progress=messages.append)
    text = report.render()

    # Every section present.
    for title in (
        "Sanity checks",
        "Figures 3 & 4",
        "Figure 9",
        "Figure 10",
        "Figure 11",
        "wakeup accounting",
    ):
        assert title in text, title
    assert len(report.sections) == 6
    assert report.total_runtime_s > 0
    assert len(messages) == 6  # progress callback fired per section

    # Parameters documented.
    assert "replicates       : 1" in text

    # Writes as valid markdown-ish.
    out = tmp_path / "REPORT.md"
    out.write_text(text)
    assert out.read_text().startswith("# Reproduction report")


@pytest.mark.slow
def test_cli_all_writes_report(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "r.md"
    code = main(
        [
            "all",
            "--duration",
            "0.8",
            "--replicates",
            "1",
            "--seed",
            "17",
            "--out",
            str(out),
        ]
    )
    assert code == 0
    assert out.exists()
    assert "Figure 9" in out.read_text()
