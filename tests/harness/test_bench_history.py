"""Bench history: per-commit snapshots, replace-on-rerun, rendering."""

import json

from repro.harness import bench


def _kernel(version="0.5.0", quick=True, rate=1_000_000.0):
    return {
        "repro_version": version,
        "quick": quick,
        "python": "3.11.9",
        "benchmarks": {"des_core": {"events_per_s": rate}},
    }


def _harness(jobs=4, speedup=2.5):
    return {"chaos_matrix": {"jobs": jobs, "speedup": speedup}}


def test_history_entry_fields(monkeypatch):
    monkeypatch.setattr(bench, "_git_sha", lambda: "abc1234")
    entry = bench.history_entry(_kernel(), _harness())
    assert entry["schema"] == bench.HISTORY_SCHEMA
    assert entry["git_sha"] == "abc1234"
    assert entry["repro_version"] == "0.5.0"
    assert entry["quick"] is True
    assert entry["events_per_s"] == {"des_core": 1_000_000.0}
    assert entry["chaos_speedup"] == 2.5


def test_append_replaces_same_commit(tmp_path, monkeypatch):
    path = tmp_path / "hist.jsonl"
    monkeypatch.setattr(bench, "_git_sha", lambda: "abc1234")
    bench.append_history(_kernel(rate=1e6), _harness(), path)
    bench.append_history(_kernel(rate=2e6), _harness(), path)
    entries = bench.read_history(path)
    assert len(entries) == 1  # rerun on the same commit replaces
    assert entries[0]["events_per_s"]["des_core"] == 2e6

    monkeypatch.setattr(bench, "_git_sha", lambda: "def5678")
    bench.append_history(_kernel(rate=3e6), _harness(), path)
    entries = bench.read_history(path)
    assert len(entries) == 2  # a new commit appends
    assert [e["git_sha"] for e in entries] == ["abc1234", "def5678"]


def test_read_skips_garbage_and_foreign_lines(tmp_path, monkeypatch):
    path = tmp_path / "hist.jsonl"
    monkeypatch.setattr(bench, "_git_sha", lambda: "abc1234")
    entry = bench.history_entry(_kernel(), _harness())
    path.write_text(
        json.dumps(entry) + "\n"
        + '{"schema": "something.else/9"}\n'
        + '{"truncated tail'  # no newline: a killed run
    )
    entries = bench.read_history(path)
    assert len(entries) == 1
    assert entries[0]["git_sha"] == "abc1234"


def test_read_missing_file_is_empty(tmp_path):
    assert bench.read_history(tmp_path / "nope.jsonl") == []


def test_render_history(monkeypatch):
    monkeypatch.setattr(bench, "_git_sha", lambda: "abc1234")
    entries = [bench.history_entry(_kernel(), _harness())]
    table = bench.render_history(entries)
    assert "abc1234" in table
    assert "des_core ev/s" in table
    assert "2.50x" in table
    assert "empty" in bench.render_history([])
