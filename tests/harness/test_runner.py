"""Tests for the experiment runner and figure harness (short runs)."""

import pytest

from repro.harness import (
    StandardParams,
    baseline_power_w,
    run_multi,
    run_multi_comparison,
    run_single_pair,
)
from repro.harness.tables import render_comparison, render_series, render_table


@pytest.fixture(scope="module")
def params():
    # Tiny but non-degenerate: ~1s of simulated time, one replicate.
    return StandardParams(duration_s=1.0, replicates=1, seed=7)


def test_baseline_is_cheap_and_cached(params):
    a = baseline_power_w(params, 0)
    b = baseline_power_w(params, 0)
    assert a == b  # cache hit returns identical tuple
    measured, true = a
    assert 0 < true < 1.0  # background only: well under a busy watt


def test_single_pair_run_produces_metrics(params):
    m = run_single_pair("Sem", params, 0)
    assert m.implementation == "Sem"
    assert m.produced > 0
    assert m.consumed > 0
    assert m.power_w > 0
    assert m.wakeups_per_s > 0
    assert m.usage_ms_per_s > 0


def test_single_pair_unknown_name(params):
    with pytest.raises(ValueError):
        run_single_pair("Nope", params, 0)


def test_multi_run_produces_metrics(params):
    m = run_multi("BP", 3, params, 0)
    assert m.n_consumers == 3
    assert m.produced > 0
    assert m.overflow_wakeups > 0  # BP wakes on overflow by definition


def test_multi_pbpl_runs(params):
    m = run_multi("PBPL", 3, params, 0)
    assert m.scheduled_wakeups > 0
    assert m.average_buffer_size > 0


def test_multi_unknown_name(params):
    with pytest.raises(ValueError):
        run_multi("Nope", 3, params, 0)


def test_replicates_are_reproducible(params):
    a = run_multi("BP", 2, params, 0)
    b = run_multi("BP", 2, params, 0)
    assert a.power_w == b.power_w
    assert a.produced == b.produced


def test_different_replicates_differ(params):
    a = run_multi("BP", 2, params, 0)
    b = run_multi("BP", 2, params, 1)
    assert a.produced != b.produced or a.power_w != b.power_w


def test_buffer_size_override(params):
    m = run_multi("BP", 2, params, 0, buffer_size=50)
    assert m.buffer_size == 50


def test_extra_power_is_positive_for_all_impls(params):
    """Sanity check from the paper (§III-C1): every experiment draws
    more than the idle baseline."""
    for name in ("BW", "Mutex", "BP", "SPBP"):
        m = run_single_pair(name, params, 0)
        assert m.power_w > 0, name


def test_bw_draws_most(params):
    """Paper sanity check: nothing beats two spinning cores; here, the
    busy-wait implementation bounds every blocking one."""
    bw = run_single_pair("BW", params, 0)
    for name in ("Mutex", "Sem", "BP", "PBP", "SPBP"):
        assert run_single_pair(name, params, 0).power_w < bw.power_w, name


def test_multi_comparison_renders(params):
    result = run_multi_comparison(params, n_consumers=2)
    text = result.render()
    assert "Figure 9" in text
    assert "PBPL" in text and "Mutex" in text
    assert result.summaries["PBPL"].replicates == params.replicates


# -- table rendering ------------------------------------------------------------


def test_render_table_alignment():
    text = render_table(["a", "bb"], [["1", "22"], ["333", "4"]])
    lines = text.splitlines()
    assert len({len(l) for l in lines}) == 1  # rectangular
    assert "| 333 | 4  |" in text


def test_render_table_with_title():
    text = render_table(["x"], [["1"]], title="T")
    assert text.startswith("T\n")


def test_render_series():
    text = render_series("fig", "n", [2, 5], [("power", [1.0, 2.0])])
    assert "fig" in text and "power" in text and "2" in text


def test_render_comparison():
    text = render_comparison("t", [("wakeups", "-39.5%", "-35.0%")])
    assert "paper" in text and "reproduced" in text
