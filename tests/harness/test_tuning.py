"""Tests for the slot-size auto-tuner."""

import pytest

from repro.harness import StandardParams, suggest_slot_size


@pytest.fixture(scope="module")
def params():
    return StandardParams(duration_s=1.0, replicates=1, seed=41)


def test_tuner_probes_all_admissible_candidates(params):
    result = suggest_slot_size(
        params, candidates_s=[2.5e-3, 5e-3, 10e-3], n_consumers=3
    )
    assert len(result.probes) == 3
    assert result.best_slot_size_s in {2.5e-3, 5e-3, 10e-3}
    # Best is the measured power minimum.
    best_power = min(p.power_w for p in result.probes)
    chosen = next(
        p for p in result.probes if p.slot_size_s == result.best_slot_size_s
    )
    assert chosen.power_w == best_power


def test_tuner_skips_candidates_beyond_latency_bound(params):
    # L = 40 ms: 80 ms is inadmissible (Δ > L violates §V-A).
    result = suggest_slot_size(
        params, candidates_s=[5e-3, 80e-3], n_consumers=2
    )
    assert [p.slot_size_s for p in result.probes] == [5e-3]


def test_tuner_rejects_empty_candidate_set(params):
    with pytest.raises(ValueError, match="no admissible"):
        suggest_slot_size(params, candidates_s=[1.0], n_consumers=2)


def test_tuner_default_grid_derives_from_latency(params):
    result = suggest_slot_size(params, n_consumers=2)
    slots = [p.slot_size_s for p in result.probes]
    assert max(slots) == pytest.approx(params.max_response_latency_s)
    assert min(slots) == pytest.approx(params.max_response_latency_s / 32)


def test_tuner_render(params):
    result = suggest_slot_size(params, candidates_s=[5e-3, 10e-3], n_consumers=2)
    text = result.render()
    assert "◀ best" in text
    assert "overflow share" in text


@pytest.mark.slow
def test_tuner_avoids_the_pathological_extremes(params):
    """On the standard workload the tuner never picks the finest grid
    (over-eager latching) — the documented U-shape."""
    result = suggest_slot_size(
        params,
        candidates_s=[1e-3, 5e-3, 10e-3, 20e-3],
        n_consumers=5,
    )
    assert result.best_slot_size_s != 1e-3
