"""The parallel run-execution engine: ordering, determinism, crashes.

The load-bearing property is byte-identity: dispatching runs across a
process pool must produce *exactly* the output of the serial loop —
same results, same order, same progress log, same rendered reports.
"""

import os

import pytest

from repro.faults import SMOKE_SCENARIOS, run_chaos
from repro.harness import (
    CellSpec,
    ExperimentGrid,
    ParallelExecutor,
    StandardParams,
    WorkerCrashError,
    resolve_jobs,
)
from repro.harness.parallel import JOBS_ENV_VAR


def _square(task):
    return task * task


def _raise_on_negative(task):
    if task < 0:
        raise ValueError(f"bad task {task}")
    return task


def _exit_on_boom(task):
    if task == "boom":
        os._exit(17)  # simulate an OOM-kill / segfault, not an exception
    return task


# -- resolve_jobs ----------------------------------------------------------------


def test_resolve_jobs_defaults_to_one(monkeypatch):
    monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
    assert resolve_jobs(None) == 1


def test_resolve_jobs_reads_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV_VAR, "3")
    assert resolve_jobs(None) == 3
    assert resolve_jobs(2) == 2  # explicit beats the environment


def test_resolve_jobs_rejects_garbage(monkeypatch):
    monkeypatch.setenv(JOBS_ENV_VAR, "many")
    with pytest.raises(ValueError, match="not an integer"):
        resolve_jobs(None)
    with pytest.raises(ValueError, match=">= 1"):
        resolve_jobs(0)


# -- map semantics ---------------------------------------------------------------


def test_map_results_in_task_order_any_jobs():
    tasks = list(range(12))
    serial = ParallelExecutor(1).map(_square, tasks)
    pooled = ParallelExecutor(3).map(_square, tasks)
    assert serial == pooled == [t * t for t in tasks]


def test_progress_fires_in_task_order_any_jobs():
    tasks = list(range(6))
    labels = [f"run {i}" for i in tasks]
    logs = {}
    for jobs in (1, 3):
        lines = []
        ParallelExecutor(jobs).map(
            _square, tasks, labels=labels, progress=lines.append
        )
        logs[jobs] = lines
    assert logs[1] == logs[3] == labels


def test_label_count_must_match():
    with pytest.raises(ValueError, match="labels"):
        ParallelExecutor(1).map(_square, [1, 2], labels=["only one"])


def test_task_exceptions_propagate_like_serial():
    for jobs in (1, 2):
        with pytest.raises(ValueError, match="bad task -3"):
            ParallelExecutor(jobs).map(_raise_on_negative, [1, -3, 2])


def test_worker_crash_raises_worker_crash_error():
    tasks = ["ok1", "ok2", "boom", "ok3"]
    with pytest.raises(WorkerCrashError) as excinfo:
        ParallelExecutor(2).map(
            _exit_on_boom, tasks, labels=[f"cell {t}" for t in tasks]
        )
    exc = excinfo.value
    assert "worker process died while running" in str(exc)
    assert exc.total == len(tasks)
    assert exc.label.startswith("cell ")
    for label, result in exc.completed:  # partial results, in task order
        assert label.startswith("cell ")
        assert result in tasks


# -- byte-identity of real reports -----------------------------------------------


def _chaos(jobs, progress=None):
    return run_chaos(
        SMOKE_SCENARIOS,
        seed=5,
        duration_s=0.4,
        n_consumers=2,
        baseline_impls=("BP",),
        progress=progress,
        jobs=jobs,
    )


def test_chaos_matrix_byte_identical_across_jobs():
    serial_log, pooled_log = [], []
    serial = _chaos(1, serial_log.append)
    pooled = _chaos(4, pooled_log.append)
    assert pooled.to_json() == serial.to_json()
    assert pooled.render() == serial.render()
    assert pooled_log == serial_log


def test_grid_sweep_byte_identical_across_jobs():
    params = StandardParams(duration_s=0.3, replicates=2, seed=42)
    specs = [CellSpec.make("BP", n_consumers=2), CellSpec.make("Sem", n_consumers=2)]
    serial = ExperimentGrid(params, cache_dir=None, jobs=1).run(specs)
    pooled = ExperimentGrid(params, cache_dir=None, jobs=4).run(specs)
    assert pooled == serial
