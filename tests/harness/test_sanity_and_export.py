"""Tests for the sanity-check suite and CSV/JSON export."""

import pytest

from repro.harness import (
    StandardParams,
    dual_spin_ceiling_w,
    run_multi,
    run_sanity_checks,
    run_single_pair,
    runs_from_csv,
    runs_from_json,
    runs_to_csv,
    runs_to_json,
)
from repro.metrics import RunMetrics


@pytest.fixture(scope="module")
def params():
    return StandardParams(duration_s=1.0, replicates=1, seed=13)


@pytest.fixture(scope="module")
def some_runs(params):
    return [
        run_single_pair("Sem", params, 0),
        run_single_pair("BP", params, 0),
        run_multi("PBPL", 2, params, 0),
    ]


# -- sanity checks --------------------------------------------------------------


def test_dual_spin_ceiling_is_large(params):
    ceiling = dual_spin_ceiling_w(params)
    # Two spinning A15-class cores: multiple watts above baseline.
    assert ceiling > 2.0


def test_sanity_report_passes_on_healthy_runs(some_runs, params):
    report = run_sanity_checks(some_runs, params)
    assert report.all_passed, report.render()
    assert len(report.checks) == 4


def test_sanity_report_render(some_runs, params):
    text = run_sanity_checks(some_runs, params).render()
    assert "PASS" in text
    assert "dual-spin ceiling" in text


def test_sanity_detects_impossible_power(params, some_runs):
    bogus = RunMetrics(
        implementation="Bogus",
        n_consumers=1,
        buffer_size=25,
        replicate=0,
        duration_s=1.0,
        power_w=100.0,  # above any ceiling
        power_true_w=100.0,
        wakeups_per_s=1.0,
        core_wakeups_per_s=1.0,
        usage_ms_per_s=1.0,
    )
    report = run_sanity_checks(list(some_runs) + [bogus], params)
    assert not report.all_passed
    failing = {c.name for c in report.checks if not c.passed}
    assert "dual-spin ceiling" in failing


def test_sanity_detects_negative_extra_power(params, some_runs):
    bogus = RunMetrics(
        implementation="Bogus",
        n_consumers=1,
        buffer_size=25,
        replicate=0,
        duration_s=1.0,
        power_w=-0.5,
        power_true_w=-0.5,
        wakeups_per_s=1.0,
        core_wakeups_per_s=1.0,
        usage_ms_per_s=1.0,
    )
    report = run_sanity_checks(list(some_runs) + [bogus], params)
    failing = {c.name for c in report.checks if not c.passed}
    assert "idle floor" in failing


# -- export ---------------------------------------------------------------------


def test_csv_roundtrip(tmp_path, some_runs):
    path = tmp_path / "runs.csv"
    runs_to_csv(some_runs, path)
    back = runs_from_csv(path)
    assert back == list(some_runs)


def test_json_roundtrip(tmp_path, some_runs):
    path = tmp_path / "runs.json"
    runs_to_json(some_runs, path)
    back = runs_from_json(path)
    assert back == list(some_runs)


def test_csv_missing_columns_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("implementation,power_w\nBP,0.1\n")
    with pytest.raises(ValueError, match="missing columns"):
        runs_from_csv(path)


def test_json_non_list_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"not": "a list"}')
    with pytest.raises(ValueError, match="JSON list"):
        runs_from_json(path)
