"""Unit tests for the figure result objects' rendering and arithmetic,
using synthetic summaries (no simulation)."""

import pytest

from repro.harness import StandardParams
from repro.harness.experiments import (
    BufferSweepResult,
    ConsumerScalingResult,
    MultiComparisonResult,
    WakeupAccountingResult,
)
from repro.metrics import RunMetrics, summarise


def make_runs(name, n_consumers=5, buffer=25, power=0.4, wakeups=300.0, **kw):
    return [
        RunMetrics(
            implementation=name,
            n_consumers=n_consumers,
            buffer_size=buffer,
            replicate=i,
            duration_s=3.0,
            power_w=power + 0.001 * i,
            power_true_w=power,
            wakeups_per_s=wakeups * 2,
            core_wakeups_per_s=wakeups,
            usage_ms_per_s=30.0,
            **kw,
        )
        for i in range(3)
    ]


def make_cell(values, n_consumers=5, buffer=25):
    """values: {impl: (power_w, core_wakeups)} → MultiComparisonResult."""
    runs = []
    summaries = {}
    for name, (power, wakeups) in values.items():
        cell_runs = make_runs(name, n_consumers, buffer, power, wakeups)
        runs += cell_runs
        summaries[name] = summarise(cell_runs)
    return MultiComparisonResult(
        params=StandardParams(replicates=3),
        n_consumers=n_consumers,
        buffer_size=buffer,
        runs=runs,
        summaries=summaries,
        implementations=tuple(values),
    )


FOUR = {
    "Mutex": (1.6, 9000.0),
    "Sem": (1.58, 9100.0),
    "BP": (0.38, 400.0),
    "PBPL": (0.36, 290.0),
}


def test_multi_comparison_reductions():
    cell = make_cell(FOUR)
    # Means include the +0.001*i replicate drift: mean = base + 0.001.
    assert cell.reduction_pct("core_wakeups_per_s", "Mutex", "PBPL") == pytest.approx(
        (290 - 9000) / 9000 * 100
    )
    assert cell.reduction_pct("power_w", "BP", "PBPL") == pytest.approx(
        (0.361 - 0.381) / 0.381 * 100
    )


def test_multi_comparison_render_contains_paper_anchors():
    text = make_cell(FOUR).render()
    assert "paper: -39.5%" in text
    assert "paper: -7.4%" in text
    assert "thread wakeups/s" in text


def test_multi_comparison_render_without_mutex_omits_that_note():
    text = make_cell({"BP": (0.38, 400.0), "PBPL": (0.36, 290.0)}).render()
    assert "PBPL vs BP" in text
    assert "PBPL vs Mutex" not in text


def test_consumer_scaling_improvement_and_render():
    result = ConsumerScalingResult(
        params=StandardParams(replicates=3), counts=(2, 5)
    )
    result.cells[2] = make_cell(FOUR, n_consumers=2)
    weaker = dict(FOUR)
    weaker["PBPL"] = (0.30, 250.0)
    result.cells[5] = make_cell(weaker, n_consumers=5)
    assert result.improvement_over_mutex(5) > result.improvement_over_mutex(2)
    text = result.render()
    assert "2 consumers" in text and "5 consumers" in text
    assert "the gap grows" in text


def test_buffer_sweep_gap_and_render():
    result = BufferSweepResult(
        params=StandardParams(replicates=3), sizes=(25, 50), n_consumers=5
    )
    result.cells[25] = make_cell(
        {"BP": (0.38, 400.0), "PBPL": (0.36, 290.0)}, buffer=25
    )
    result.cells[50] = make_cell(
        {"BP": (0.35, 200.0), "PBPL": (0.345, 210.0)}, buffer=50
    )
    assert result.gap_pct(25) > result.gap_pct(50)
    text = result.render()
    assert "buffer 25" in text and "buffer 50" in text
    assert "gap narrows" in text


def test_wakeup_accounting_arithmetic():
    pbpl = summarise(
        make_runs("PBPL", scheduled_wakeups=600, overflow_wakeups=200,
                  average_buffer_size=44.0, buffer=50)
    )
    bp = summarise(
        make_runs("BP", scheduled_wakeups=0, overflow_wakeups=1000,
                  average_buffer_size=50.0, buffer=50)
    )
    acc = WakeupAccountingResult(
        params=StandardParams(replicates=3),
        buffer_size=50,
        n_consumers=5,
        pbpl=pbpl,
        bp=bp,
    )
    assert acc.pbpl_total_wakeups == pytest.approx(800)
    assert acc.total_reduction_pct == pytest.approx(-20.0)
    assert acc.overflow_conversion_pct == pytest.approx(80.0)
    text = acc.render()
    assert "82.5%" in text  # the paper anchor
    assert "43/50" in text


def test_wakeup_accounting_zero_bp_overflows_edge():
    pbpl = summarise(make_runs("PBPL", scheduled_wakeups=10, overflow_wakeups=0))
    bp = summarise(make_runs("BP", scheduled_wakeups=0, overflow_wakeups=0))
    acc = WakeupAccountingResult(
        params=StandardParams(replicates=3),
        buffer_size=25,
        n_consumers=5,
        pbpl=pbpl,
        bp=bp,
    )
    assert acc.overflow_conversion_pct == 0.0
