"""Tests for the cached experiment grid."""

import pytest

from repro.harness import CellSpec, ExperimentGrid, StandardParams


@pytest.fixture
def params():
    return StandardParams(duration_s=0.6, replicates=1, seed=99)


def test_cell_spec_make_normalises_overrides():
    spec = CellSpec.make("PBPL", pbpl_overrides={"resize_margin": 0.3})
    assert spec.pbpl_overrides == (("resize_margin", 0.3),)
    assert spec.overrides_dict() == {"resize_margin": 0.3}
    assert hash(spec)  # hashable → usable as dict key


def test_grid_runs_without_cache(params):
    grid = ExperimentGrid(params, cache_dir=None)
    runs = grid.run_cell(CellSpec.make("BP", n_consumers=2))
    assert len(runs) == params.replicates
    assert grid.cache_hits == 0


def test_grid_caches_to_disk(tmp_path, params):
    grid = ExperimentGrid(params, cache_dir=tmp_path)
    spec = CellSpec.make("BP", n_consumers=2)
    first = grid.run_cell(spec)
    assert grid.cache_hits == 0
    second = grid.run_cell(spec)
    assert grid.cache_hits == 1
    assert second == first
    assert len(list(tmp_path.glob("cell-*.json"))) == 1


def test_cache_shared_across_grid_instances(tmp_path, params):
    spec = CellSpec.make("Sem", n_consumers=2)
    ExperimentGrid(params, cache_dir=tmp_path).run_cell(spec)
    fresh = ExperimentGrid(params, cache_dir=tmp_path)
    fresh.run_cell(spec)
    assert fresh.cache_hits == 1


def test_changed_params_miss_the_cache(tmp_path, params):
    spec = CellSpec.make("BP", n_consumers=2)
    ExperimentGrid(params, cache_dir=tmp_path).run_cell(spec)
    other = StandardParams(duration_s=0.6, replicates=1, seed=100)
    grid = ExperimentGrid(other, cache_dir=tmp_path)
    grid.run_cell(spec)
    assert grid.cache_hits == 0
    assert len(list(tmp_path.glob("cell-*.json"))) == 2


def test_pbpl_overrides_part_of_key(tmp_path, params):
    grid = ExperimentGrid(params, cache_dir=tmp_path)
    grid.run_cell(CellSpec.make("PBPL", n_consumers=2))
    grid.run_cell(
        CellSpec.make("PBPL", n_consumers=2, pbpl_overrides={"resize_margin": 0.9})
    )
    assert grid.cache_hits == 0
    assert len(list(tmp_path.glob("cell-*.json"))) == 2


def test_run_returns_summaries(tmp_path, params):
    grid = ExperimentGrid(params, cache_dir=tmp_path)
    specs = [CellSpec.make("BP", n_consumers=2), CellSpec.make("Sem", n_consumers=2)]
    summaries = grid.run(specs)
    assert set(summaries) == set(specs)
    assert summaries[specs[0]].implementation == "BP"


def test_invalidate(tmp_path, params):
    grid = ExperimentGrid(params, cache_dir=tmp_path)
    grid.run_cell(CellSpec.make("BP", n_consumers=2))
    assert grid.invalidate() == 1
    assert list(tmp_path.glob("cell-*.json")) == []
    assert ExperimentGrid(params, cache_dir=None).invalidate() == 0
