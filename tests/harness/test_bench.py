"""The `repro bench` suite: payload shape, persistence, regression gate."""

import json

from repro.harness.bench import (
    HARNESS_SCHEMA,
    KERNEL_SCHEMA,
    bench_harness,
    bench_kernel,
    check_regressions,
    render_summary,
    write_bench_files,
)


def test_bench_kernel_quick_payload():
    payload = bench_kernel(quick=True)
    assert payload["schema"] == KERNEL_SCHEMA
    assert payload["quick"] is True
    for name in ("timeout_storm", "pbpl_smoke"):
        b = payload["benchmarks"][name]
        assert b["events"] > 0
        assert b["events_per_s"] > 0
        assert b["best_wall_s"] > 0


def test_bench_harness_quick_is_byte_identical():
    payload = bench_harness(quick=True, jobs=2)
    assert payload["schema"] == HARNESS_SCHEMA
    cm = payload["chaos_matrix"]
    assert cm["jobs"] == 2
    assert cm["byte_identical"] is True
    assert cm["serial_wall_s"] > 0 and cm["parallel_wall_s"] > 0


def _kernel_payload(storm_rate, smoke_rate):
    return {
        "schema": KERNEL_SCHEMA,
        "benchmarks": {
            "timeout_storm": {"events_per_s": storm_rate},
            "pbpl_smoke": {"events_per_s": smoke_rate},
        },
    }


def test_regression_gate_passes_within_tolerance(tmp_path):
    baseline = tmp_path / "BENCH_kernel.json"
    baseline.write_text(json.dumps(_kernel_payload(1000.0, 500.0)))
    # 10% slower: inside the 20% tolerance.
    assert check_regressions(_kernel_payload(900.0, 450.0), baseline) == []


def test_regression_gate_fails_past_tolerance(tmp_path):
    baseline = tmp_path / "BENCH_kernel.json"
    baseline.write_text(json.dumps(_kernel_payload(1000.0, 500.0)))
    failures = check_regressions(_kernel_payload(700.0, 495.0), baseline)
    assert len(failures) == 1
    assert "timeout_storm" in failures[0]
    assert "below baseline" in failures[0]


def test_regression_gate_reports_missing_baseline(tmp_path):
    failures = check_regressions(
        _kernel_payload(1.0, 1.0), tmp_path / "absent.json"
    )
    assert failures and "not found" in failures[0]


def test_write_bench_files_and_summary(tmp_path):
    kernel = {
        "schema": KERNEL_SCHEMA,
        "repro_version": "1.0.0",
        "python": "3.11.7",
        "cpu_count": 4,
        "quick": True,
        "benchmarks": {
            "pbpl_smoke": {
                "events": 100,
                "repeats": 3,
                "best_wall_s": 0.01,
                "events_per_s": 10_000.0,
            }
        },
    }
    harness = {
        "schema": HARNESS_SCHEMA,
        "chaos_matrix": {
            "jobs": 4,
            "serial_wall_s": 2.0,
            "parallel_wall_s": 0.8,
            "speedup": 2.5,
            "byte_identical": True,
        },
    }
    kpath, hpath = write_bench_files(kernel, harness, tmp_path)
    assert json.loads(kpath.read_text())["schema"] == KERNEL_SCHEMA
    assert json.loads(hpath.read_text())["schema"] == HARNESS_SCHEMA
    text = render_summary(kernel, harness)
    assert "pbpl_smoke" in text
    assert "2.50x" in text
    assert "byte-identical: yes" in text
