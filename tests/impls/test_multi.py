"""Tests for multi-pair assembly and the §III power-profile shape."""

import pytest

from repro.cpu import Machine
from repro.impls import (
    MultiPairSystem,
    PCConfig,
    SINGLE_IMPLEMENTATIONS,
    phase_shifted_traces,
)
from repro.power import EnergyLedger, PowerModel, PowerTop
from repro.sim import Environment, RandomStreams
from repro.workloads import worldcup_like_trace
from tests.impls.conftest import Rig, regular_trace

import numpy as np


def test_phase_shifted_traces_count_and_distinct():
    trace = regular_trace(100.0, 2.0)
    shifted = phase_shifted_traces(trace, 4)
    assert len(shifted) == 4
    assert np.array_equal(shifted[0].times, trace.times)  # shift 0
    for s in shifted[1:]:
        assert not np.array_equal(s.times, trace.times)
        assert s.n_items == trace.n_items


def test_phase_shifted_traces_validation():
    with pytest.raises(ValueError):
        phase_shifted_traces(regular_trace(10, 1.0), 0)


def test_multi_pair_system_runs_all_pairs():
    rig = Rig()
    traces = phase_shifted_traces(regular_trace(100.0, 2.0), 3)
    system = MultiPairSystem(
        rig.env, rig.machine, "Sem", traces, PCConfig()
    ).start()
    rig.env.run(until=2.0)
    total = system.aggregate_stats()
    assert total.produced == sum(t.n_items for t in traces)
    assert total.consumed == total.produced
    for i, pair in enumerate(system.pairs):
        assert pair.owner == f"consumer-{i}"
        assert pair.stats.consumed > 0


def test_multi_pair_accepts_class_or_name():
    rig = Rig()
    traces = phase_shifted_traces(regular_trace(10.0, 1.0), 2)
    by_name = MultiPairSystem(rig.env, rig.machine, "BP", traces)
    by_class = MultiPairSystem(
        rig.env, rig.machine, SINGLE_IMPLEMENTATIONS["BP"], traces
    )
    assert by_name.name == by_class.name == "BP"


def test_multi_pair_unknown_name_rejected():
    rig = Rig()
    with pytest.raises(ValueError, match="unknown implementation"):
        MultiPairSystem(rig.env, rig.machine, "Nope", [regular_trace(10, 1.0)])


def test_multi_pair_needs_traces():
    rig = Rig()
    with pytest.raises(ValueError, match="at least one trace"):
        MultiPairSystem(rig.env, rig.machine, "Sem", [])


def test_consumers_pinned_to_core_zero_by_default():
    rig = Rig(n_cores=2)
    traces = phase_shifted_traces(regular_trace(100.0, 1.0), 3)
    MultiPairSystem(rig.env, rig.machine, "Sem", traces).start()
    rig.env.run(until=1.0)
    assert rig.machine.core(0).total_busy_s > 0
    assert rig.machine.core(1).total_busy_s == 0


def test_round_robin_core_assignment():
    rig = Rig(n_cores=2)
    traces = phase_shifted_traces(regular_trace(100.0, 1.0), 4)
    MultiPairSystem(
        rig.env, rig.machine, "Sem", traces, consumer_cores=[0, 1]
    ).start()
    rig.env.run(until=1.0)
    assert rig.machine.core(0).total_busy_s > 0
    assert rig.machine.core(1).total_busy_s > 0


def test_average_buffer_capacity_static_for_fixed_impls():
    rig = Rig()
    traces = phase_shifted_traces(regular_trace(10.0, 1.0), 2)
    system = MultiPairSystem(
        rig.env, rig.machine, "Sem", traces, PCConfig(buffer_size=25)
    )
    assert system.average_buffer_capacity() == 25.0


# -- the §III shape, end to end ----------------------------------------------


def profile_run(name, seed=0):
    """Run one implementation against the bursty web-like trace and
    return (extra power, task wakeups/s, usage ms/s)."""
    duration = 2.0
    env = Environment()
    machine = Machine(env, n_cores=1, streams=RandomStreams(seed=seed))
    model = PowerModel()
    ledger = EnergyLedger(env, model)
    top = PowerTop(env)
    machine.add_listener(ledger)
    machine.add_listener(top)
    ledger.watch(machine.core(0))
    trace = worldcup_like_trace(
        2000.0, duration, RandomStreams(seed=seed).stream("trace")
    )
    SINGLE_IMPLEMENTATIONS[name](
        env, machine.core(0), machine.timers, trace, PCConfig()
    ).start()
    env.run(until=duration)
    ledger.settle()
    baseline_w = model.baseline_power_w(machine.core(0))
    power_w = ledger.average_power_w(duration) - baseline_w
    report = top.report()
    return power_w, report.row("consumer").wakeups_per_s, report.total_usage_ms_per_s


@pytest.mark.slow
def test_power_profile_ordering_matches_paper():
    """Fig. 3/4 shape: BW worst, batch impls best, Mutex/Sem in between;
    SPBP has the fewest wakeups."""
    results = {name: profile_run(name) for name in SINGLE_IMPLEMENTATIONS}
    power = {k: v[0] for k, v in results.items()}
    wakeups = {k: v[1] for k, v in results.items()}

    # Busy-waiting burns the most power by far.
    assert power["BW"] > 3 * power["Mutex"]
    # Every batch implementation beats Mutex and Sem.
    for batch in ("BP", "PBP", "SPBP"):
        assert power[batch] < power["Mutex"], batch
        assert power[batch] < power["Sem"], batch
    # Batch impls wake far less often than per-item blocking impls.
    assert wakeups["SPBP"] < wakeups["Mutex"] / 2
    assert wakeups["BP"] < wakeups["Mutex"] / 2
    # BW/Yield never wake (they never sleep).
    assert wakeups["BW"] == 0.0
    assert wakeups["Yield"] == 0.0
