"""Shared rig for implementation tests: machine + instruments + runner."""

import numpy as np
import pytest

from repro.cpu import Machine
from repro.impls import PCConfig, SINGLE_IMPLEMENTATIONS
from repro.power import EnergyLedger, PowerModel, PowerTop
from repro.sim import Environment, RandomStreams
from repro.workloads import Trace


class Rig:
    """One machine + instruments, ready to run implementations."""

    def __init__(self, seed=0, n_cores=1, timer_kwargs=None):
        self.env = Environment()
        self.machine = Machine(
            self.env,
            n_cores=n_cores,
            streams=RandomStreams(seed=seed),
            timer_kwargs=timer_kwargs or {},
        )
        self.model = PowerModel()
        self.ledger = EnergyLedger(self.env, self.model)
        self.powertop = PowerTop(self.env)
        self.machine.add_listener(self.ledger)
        self.machine.add_listener(self.powertop)
        for core in self.machine.cores:
            self.ledger.watch(core)

    def run_impl(self, name, trace, duration, config=None, owner="consumer"):
        impl = SINGLE_IMPLEMENTATIONS[name](
            self.env,
            self.machine.core(0),
            self.machine.timers,
            trace,
            config or PCConfig(),
            owner=owner,
        ).start()
        self.env.run(until=duration)
        self.ledger.settle()
        return impl


@pytest.fixture
def rig():
    return Rig()


def regular_trace(rate_per_s, duration_s, start=None):
    """Deterministic evenly spaced arrivals (for exact assertions)."""
    gap = 1.0 / rate_per_s
    first = gap if start is None else start
    times = np.arange(first, duration_s, gap)
    times = times[times < duration_s]
    return Trace(times, duration_s, f"regular({rate_per_s}/s)")
