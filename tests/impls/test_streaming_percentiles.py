"""Integration: percentiles survive track_latencies=False via P²."""

import pytest

from repro.impls import PCConfig
from tests.impls.conftest import Rig, regular_trace


def run(track):
    rig = Rig(seed=0)
    cfg = PCConfig(track_latencies=track)
    impl = rig.run_impl("BP", regular_trace(2000.0, 2.0), 2.0, cfg)
    return impl.stats


def test_untracked_run_keeps_no_raw_latencies():
    stats = run(track=False)
    assert stats.latencies == []
    assert stats.consumed > 0


def test_streamed_percentiles_close_to_exact():
    exact = run(track=True)
    streamed = run(track=False)
    # Same seed → same workload; compare the P² estimate to the exact
    # percentile of the tracked twin run.
    for q in (50, 95, 99):
        assert streamed.latency_percentile(q) == pytest.approx(
            exact.latency_percentile(q), rel=0.15
        ), q


def test_unstreamed_quantile_raises_helpfully():
    stats = run(track=False)
    with pytest.raises(ValueError, match="needs raw tracking"):
        stats.latency_percentile(75)


def test_mean_and_max_unaffected_by_tracking_mode():
    exact = run(track=True)
    streamed = run(track=False)
    assert streamed.mean_latency_s == pytest.approx(exact.mean_latency_s)
    assert streamed.max_latency_s == pytest.approx(exact.max_latency_s)
