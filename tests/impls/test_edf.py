"""Tests for the EDF-batching baseline."""

import numpy as np
import pytest

from repro.impls import EDFBatchSystem, PCConfig, phase_shifted_traces
from repro.workloads import Trace
from tests.impls.conftest import Rig, regular_trace


def build(traces, config=None, seed=0):
    rig = Rig(seed=seed)
    system = EDFBatchSystem(
        rig.env, rig.machine, traces, config or PCConfig()
    ).start()
    return rig, system


def test_conservation():
    traces = phase_shifted_traces(regular_trace(500.0, 2.0), 3)
    rig, system = build(traces)
    rig.env.run(until=2.0)
    agg = system.aggregate_stats()
    buffered = sum(len(p.buffer) for p in system.pairs)
    inflight = sum(p.in_flight for p in system.pairs)
    assert agg.produced == sum(t.n_items for t in traces)
    assert agg.produced == agg.consumed + buffered + inflight


def test_deadline_respected_when_unsaturated():
    traces = [regular_trace(300.0, 2.0)]
    cfg = PCConfig(buffer_size=200, max_response_latency_s=20e-3)
    rig, system = build(traces, cfg)
    rig.env.run(until=2.0)
    agg = system.aggregate_stats()
    assert agg.consumed > 0
    # Batch time adds slack beyond the wake instant.
    assert agg.max_latency_s <= 20e-3 + 2e-3


def test_wakes_at_deadline_not_per_item():
    # 1000 items/s, L = 40 ms, huge buffer: wakes ≈ 1/L = 25/s, far
    # fewer than per-item.
    traces = [regular_trace(1000.0, 2.0)]
    cfg = PCConfig(buffer_size=200, max_response_latency_s=40e-3)
    rig, system = build(traces, cfg)
    rig.env.run(until=2.0)
    agg = system.aggregate_stats()
    assert agg.scheduled_wakeups == pytest.approx(2.0 / 40e-3, rel=0.15)
    assert agg.overflow_wakeups == 0


def test_overflow_forces_unscheduled_wakeups():
    # Buffer fills (25 items at 2000/s = 12.5 ms) before the 40 ms
    # deadline: overflow wakes dominate.
    traces = [regular_trace(2000.0, 2.0)]
    cfg = PCConfig(buffer_size=25, max_response_latency_s=40e-3)
    rig, system = build(traces, cfg)
    rig.env.run(until=2.0)
    agg = system.aggregate_stats()
    assert agg.overflow_wakeups > agg.scheduled_wakeups


def test_shared_drain_across_consumers():
    """One wake drains everyone: total core wakeups track the busiest
    consumer, not the sum."""
    traces = phase_shifted_traces(regular_trace(1000.0, 2.0), 4)
    cfg = PCConfig(buffer_size=200, max_response_latency_s=40e-3)
    rig, system = build(traces, cfg)
    rig.env.run(until=2.0)
    # 4 consumers × 25 deadline-wakes/s each would be 200/s unshared;
    # shared draining keeps it near 25/s.
    assert rig.machine.core(0).total_wakeups / 2.0 < 60


def test_empty_trace_never_wakes():
    empty = Trace(np.array([]), 2.0, "empty")
    rig, system = build([empty])
    rig.env.run(until=2.0)
    agg = system.aggregate_stats()
    assert agg.scheduled_wakeups == 0
    assert rig.machine.core(0).total_wakeups == 0


def test_needs_traces():
    rig = Rig()
    with pytest.raises(ValueError):
        EDFBatchSystem(rig.env, rig.machine, [])
