"""Behavioural tests for the seven single-pair implementations."""

import pytest

from repro.impls import PCConfig, SINGLE_IMPLEMENTATIONS
from tests.impls.conftest import Rig, regular_trace

ALL_IMPLS = sorted(SINGLE_IMPLEMENTATIONS)

# A gentle workload every implementation can fully absorb: 200 items/s
# for 2 s, 2 µs service time.
RATE, DURATION = 200.0, 2.0


def run(name, config=None, rate=RATE, duration=DURATION, seed=0, timer_kwargs=None):
    rig = Rig(seed=seed, timer_kwargs=timer_kwargs)
    impl = rig.run_impl(name, regular_trace(rate, duration), duration, config)
    return rig, impl


# -- universal correctness properties ---------------------------------------------


@pytest.mark.parametrize("name", ALL_IMPLS)
def test_all_items_produced(name):
    _, impl = run(name)
    assert impl.stats.produced == impl.trace.n_items


@pytest.mark.parametrize("name", ALL_IMPLS)
def test_consumed_at_most_produced(name):
    _, impl = run(name)
    assert impl.stats.consumed <= impl.stats.produced


@pytest.mark.parametrize("name", ALL_IMPLS)
def test_unconsumed_items_still_buffered(name):
    """Conservation: produced = consumed + buffered + in-flight."""
    _, impl = run(name)
    assert impl.stats.produced == (
        impl.stats.consumed + len(impl.buffer) + impl.in_flight
    )


@pytest.mark.parametrize("name", ["BW", "Yield", "Mutex", "Sem"])
def test_continuous_impls_consume_everything(name):
    """The per-item implementations drain continuously, so nothing is
    left at the horizon under this gentle load."""
    _, impl = run(name)
    assert impl.stats.consumed == impl.stats.produced


@pytest.mark.parametrize("name", ["PBP", "SPBP"])
def test_periodic_impls_consume_all_but_final_period(name):
    """Periodic batchers may hold at most the final period's arrivals."""
    _, impl = run(name)
    max_tail = int(RATE * PCConfig().batch_period_s * 2) + 2
    assert impl.stats.consumed >= impl.stats.produced - max_tail


def test_bp_waits_for_full_buffers():
    _, impl = run("BP", PCConfig(buffer_size=25))
    # 399 items arrive (regular grid, open interval); 15 full batches of
    # 25 get drained and 24 items remain buffered at the horizon.
    assert impl.stats.produced == 399
    assert impl.stats.invocations == 15
    assert impl.stats.consumed == 375
    assert impl.stats.overflow_wakeups == impl.stats.invocations


@pytest.mark.parametrize("name", ALL_IMPLS)
def test_latencies_recorded(name):
    _, impl = run(name)
    if impl.stats.consumed:
        assert impl.stats.mean_latency_s > 0
        assert impl.stats.max_latency_s >= impl.stats.mean_latency_s
        assert len(impl.stats.latencies) == impl.stats.consumed


def test_fifo_order_preserved():
    """Items must be consumed in production order (check via latencies:
    with regular arrivals and immediate consumption, latency is flat)."""
    _, impl = run("Sem")
    assert impl.stats.consumed == impl.stats.produced


# -- per-implementation signatures (the §III power-profile mechanics) ----------


def test_bw_single_wakeup_full_usage():
    rig, impl = run("BW")
    report = rig.powertop.report()
    row = report.row("consumer")
    assert impl.stats.invocations == 1
    assert row.wakeups_per_s == 0.0  # never re-woken by the scheduler
    assert row.usage_ms_per_s == pytest.approx(1000.0, rel=0.02)
    assert rig.machine.core(0).total_wakeups == 1


def test_yield_clocks_down_with_ondemand_governor():
    from repro.cpu import OndemandGovernor
    from repro.sim import Environment, RandomStreams
    from repro.cpu import Machine
    from repro.power import EnergyLedger, PowerModel

    def run_spinner(name):
        env = Environment()
        machine = Machine(
            env,
            n_cores=1,
            governor_factory=OndemandGovernor,
            streams=RandomStreams(seed=1),
        )
        model = PowerModel()
        ledger = EnergyLedger(env, model)
        machine.add_listener(ledger)
        ledger.watch(machine.core(0))
        impl = SINGLE_IMPLEMENTATIONS[name](
            env,
            machine.core(0),
            machine.timers,
            regular_trace(RATE, DURATION),
            PCConfig(),
        ).start()
        env.run(until=DURATION)
        ledger.settle()
        return ledger.total_energy_j()

    bw_energy = run_spinner("BW")
    yield_energy = run_spinner("Yield")
    assert yield_energy < bw_energy  # DVFS clocks the yielding spinner down


def test_mutex_wakes_once_per_item_when_sparse():
    rig, impl = run("Mutex")
    row = rig.powertop.report().row("consumer")
    # 200 items/s, each arriving to an idle consumer → ~200 wakeups/s.
    assert row.wakeups_per_s == pytest.approx(RATE, rel=0.05)
    assert impl.stats.invocations == pytest.approx(RATE * DURATION, rel=0.05)


def test_sem_wakes_once_per_item_when_sparse():
    rig, impl = run("Sem")
    row = rig.powertop.report().row("consumer")
    assert row.wakeups_per_s == pytest.approx(RATE, rel=0.05)


def test_batch_impls_wake_far_less_than_per_item():
    for name in ("BP", "PBP", "SPBP"):
        rig, impl = run(name, PCConfig(buffer_size=25, batch_period_s=20e-3))
        row = rig.powertop.report().row("consumer")
        assert row.wakeups_per_s < RATE / 2, name


def test_pbp_wakes_about_once_per_period_even_when_idle():
    # Rate 0.5 items/s: buffer almost always empty, yet PBP still wakes
    # every period (the paper's criticism of naive periodic batching).
    rig, impl = run(
        "PBP",
        PCConfig(batch_period_s=50e-3),
        rate=0.5,
    )
    expected = DURATION / 50e-3
    assert impl.stats.invocations == pytest.approx(expected, rel=0.15)
    assert impl.stats.scheduled_wakeups == impl.stats.invocations


def test_spbp_matches_period_exactly_when_idle():
    rig, impl = run(
        "SPBP",
        PCConfig(batch_period_s=50e-3),
        rate=0.5,
        timer_kwargs={"signal_jitter_s": 0.0},
    )
    assert impl.stats.invocations == pytest.approx(DURATION / 50e-3, abs=1)


def test_nanosleep_drift_gives_pbp_fewer_or_equal_ticks_than_spbp():
    """PBP's relative rearm + lateness drifts, so over a fixed horizon it
    fits in no more scheduled ticks than drift-free SPBP."""
    cfg = PCConfig(batch_period_s=10e-3)
    _, pbp = run("PBP", cfg, rate=0.5)
    _, spbp = run("SPBP", cfg, rate=0.5)
    assert pbp.stats.scheduled_wakeups <= spbp.stats.scheduled_wakeups


def test_overflow_forces_early_wakeup_in_periodic_batch():
    # Huge period + high rate: the 25-slot buffer fills long before the
    # period expires; overflow wakeups must dominate.
    _, impl = run(
        "PBP",
        PCConfig(buffer_size=25, batch_period_s=0.5),
        rate=1000.0,
    )
    assert impl.stats.overflow_wakeups > impl.stats.scheduled_wakeups
    assert impl.stats.consumed > 0


def test_producer_backpressure_counted():
    # BP with arrivals (1 µs apart) far outpacing the ~6 µs wake-and-
    # drain path: the producer regularly hits a still-full buffer.
    _, impl = run("BP", PCConfig(buffer_size=10), rate=1e6, duration=0.01)
    assert impl.stats.overflows > 0
    # Back-pressure delays but never loses items.
    assert impl.stats.produced == (
        impl.stats.consumed + len(impl.buffer) + impl.in_flight
    )


def test_deadline_misses_tracked_for_bp():
    # BP holds items until the buffer fills: at 200/s with buffer 25, an
    # item can wait ~125 ms ≫ the 2 ms deadline.
    _, impl = run("BP", PCConfig(buffer_size=25))
    assert impl.stats.deadline_misses > 0


def test_mutex_latency_far_below_bp_latency():
    """The paper's latency trade-off: Mutex/Sem have much lower latency
    than batch processing."""
    _, mutex = run("Mutex")
    _, bp = run("BP")
    assert mutex.stats.mean_latency_s < bp.stats.mean_latency_s / 10


def test_unknown_impl_name_rejected():
    with pytest.raises(KeyError):
        SINGLE_IMPLEMENTATIONS["nope"]
