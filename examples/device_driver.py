#!/usr/bin/env python
"""Device-driver scenario: interrupt coalescing as producer-consumer.

The paper's first motivating domain (§I): "operating systems primitives
… consume data received from I/O devices, e.g., in device drivers". A
NIC raising one interrupt per packet is exactly the Mutex pattern (one
wakeup per item); hardware interrupt *coalescing* is the BP pattern
(wake when the ring fills); and a driver using timer-based NAPI-style
polling with a deadline is PBPL's territory.

This example models three devices of one embedded box — a NIC, an SSD
completion queue, and a sensor hub — each with its own event rate and
its own latency budget, and shows the per-device energy bill with the
paper's attribution question: *which driver is burning the battery?*
(`repro.power.attribution` answers it.)

Run:  python examples/device_driver.py
"""

from repro.core import PBPLConfig, PBPLSystem
from repro.cpu import Machine
from repro.impls import MultiPairSystem, PCConfig
from repro.power import EnergyAttributor, EnergyLedger, PowerModel
from repro.sim import Environment, RandomStreams
from repro.workloads import mmpp_trace, poisson_trace

DURATION_S = 3.0

DEVICES = ("nic-rx", "ssd-cq", "sensor-hub")


def build_event_streams(streams: RandomStreams):
    return [
        # NIC: bursty packet arrivals (flows come and go).
        mmpp_trace([800.0, 6000.0], [0.3, 0.1], DURATION_S, streams.stream("nic")),
        # SSD completions: moderate, fairly steady.
        poisson_trace(900.0, DURATION_S, streams.stream("ssd")),
        # Sensor hub: slow periodic-ish telemetry.
        poisson_trace(60.0, DURATION_S, streams.stream("sensors")),
    ]


def run(kind: str):
    env = Environment()
    streams = RandomStreams(seed=33)
    machine = Machine(env, n_cores=2, streams=streams)
    model = PowerModel()
    ledger = EnergyLedger(env, model)
    attributor = EnergyAttributor(env, model)
    machine.add_listener(ledger)
    machine.add_listener(attributor)
    for core in machine.cores:
        ledger.watch(core)
        attributor.watch(core)

    traces = build_event_streams(streams)
    common = dict(
        buffer_size=32,
        service_time_s=5e-6,  # per-event driver work
        max_response_latency_s=20e-3,  # I/O completion budget
    )
    if kind == "PBPL":
        system = PBPLSystem(
            env, machine, traces, PBPLConfig(slot_size_s=2.5e-3, **common)
        ).start()
    else:
        system = MultiPairSystem(env, machine, kind, traces, PCConfig(**common)).start()
    env.run(until=DURATION_S)
    ledger.settle()
    report = attributor.report()
    agg = system.aggregate_stats()
    per_device = {
        device: report.power_w(f"consumer-{i}") * 1000
        for i, device in enumerate(DEVICES)
    }
    return {
        "total_mw": ledger.average_power_w(DURATION_S) * 1000,
        "per_device_mw": per_device,
        "wakeups": machine.core(0).total_wakeups / DURATION_S,
        "handled": agg.consumed,
        "p99_ms": agg.latency_percentile(99) * 1000,
    }


def main() -> None:
    print("embedded box, three device event queues, one isolated CPU core\n")
    header = (
        f"{'driver model':<22}{'total mW':>10}{'wakeups/s':>11}"
        f"{'p99 ms':>8}  per-device mW"
    )
    print(header)
    print("-" * (len(header) + 18))
    rows = {}
    for kind, label in (
        ("Mutex", "irq-per-event (Mutex)"),
        ("BP", "ring-full coalesce (BP)"),
        ("PBPL", "deadline poll (PBPL)"),
    ):
        r = run(kind)
        rows[kind] = r
        devices = "  ".join(
            f"{d}={mw:.1f}" for d, mw in r["per_device_mw"].items()
        )
        print(
            f"{label:<22}{r['total_mw']:>10.1f}{r['wakeups']:>11.0f}"
            f"{r['p99_ms']:>8.2f}  {devices}"
        )
    print()
    nic_share = rows["Mutex"]["per_device_mw"]["nic-rx"]
    print(
        f"under irq-per-event, the NIC alone bills {nic_share:.0f} mW of CPU "
        "power —\nthe attribution the kernel's powertop shows, reproduced "
        "per consumer.\nPBPL keeps every completion within its 20 ms budget "
        f"(p99 {rows['PBPL']['p99_ms']:.1f} ms) at a fraction of the wakeups."
    )


if __name__ == "__main__":
    main()
