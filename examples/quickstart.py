#!/usr/bin/env python
"""Quickstart: run PBPL against the classic mutex implementation.

Builds a simulated dual-core machine, feeds five producer-consumer
pairs a bursty web-log-like workload, and prints the power/wakeup
comparison — the essence of the paper's Figure 9 in ~30 lines of user
code.

Run:  python examples/quickstart.py
"""

from repro.core import PBPLConfig, PBPLSystem
from repro.cpu import Machine
from repro.impls import MultiPairSystem, PCConfig, phase_shifted_traces
from repro.power import EnergyLedger, PowerModel
from repro.sim import Environment, RandomStreams
from repro.workloads import worldcup_like_trace

DURATION_S = 3.0
N_PAIRS = 5


def run(kind: str) -> tuple[float, float]:
    """Run one implementation; returns (avg power W, core wakeups/s)."""
    env = Environment()
    streams = RandomStreams(seed=42)
    machine = Machine(env, n_cores=2, streams=streams)
    model = PowerModel()
    ledger = EnergyLedger(env, model)
    machine.add_listener(ledger)
    for core in machine.cores:
        ledger.watch(core)

    base = worldcup_like_trace(2200.0, DURATION_S, streams.stream("trace"))
    traces = phase_shifted_traces(base, N_PAIRS)

    if kind == "PBPL":
        PBPLSystem(env, machine, traces, PBPLConfig(slot_size_s=5e-3)).start()
    else:
        MultiPairSystem(env, machine, kind, traces, PCConfig()).start()

    env.run(until=DURATION_S)
    ledger.settle()
    return (
        ledger.average_power_w(DURATION_S),
        machine.core(0).total_wakeups / DURATION_S,
    )


def main() -> None:
    print(f"{N_PAIRS} producer-consumer pairs, {DURATION_S:g}s of bursty web load\n")
    print(f"{'implementation':<16}{'power (mW)':>12}{'wakeups/s':>12}")
    results = {}
    for kind in ("Mutex", "BP", "PBPL"):
        power_w, wakeups = run(kind)
        results[kind] = power_w
        print(f"{kind:<16}{power_w * 1000:>12.1f}{wakeups:>12.0f}")
    saving = (1 - results["PBPL"] / results["Mutex"]) * 100
    print(f"\nPBPL saves {saving:.0f}% of machine power vs the mutex classic.")


if __name__ == "__main__":
    main()
