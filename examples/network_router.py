#!/usr/bin/env python
"""Network-router scenario: the latency/power dial on the slot size Δ.

The paper's fourth motivating case (§I): "data packets received from
the network need to be removed and processed from internal buffers of
the device". A router cannot batch forever — packets have a latency
budget — so the operator's real question is *how much power does each
millisecond of allowed queueing delay buy?*

This example runs six ingress ports through PBPL while sweeping the
slot size Δ, charting power against p99 queueing delay — the trade-off
curve the paper's formal model (max response latency as a first-class
constraint, §IV-A) is built around. Mutex (the latency-optimal classic)
anchors the left end of the curve.

Run:  python examples/network_router.py
"""

from repro.core import PBPLConfig, PBPLSystem
from repro.cpu import Machine
from repro.impls import MultiPairSystem, PCConfig, phase_shifted_traces
from repro.power import EnergyLedger, PowerModel
from repro.sim import Environment, RandomStreams
from repro.workloads import worldcup_like_trace

DURATION_S = 3.0
N_PORTS = 6
PPS_PER_PORT = 2000.0  # packets/s per ingress port


def run(slot_size_s=None):
    """slot_size_s=None runs the Mutex baseline."""
    env = Environment()
    streams = RandomStreams(seed=3)
    machine = Machine(env, n_cores=2, streams=streams)
    model = PowerModel()
    ledger = EnergyLedger(env, model)
    machine.add_listener(ledger)
    for core in machine.cores:
        ledger.watch(core)

    base = worldcup_like_trace(
        PPS_PER_PORT, DURATION_S, streams.stream("packets"), flash_magnitude=5.0
    )
    traces = phase_shifted_traces(base, N_PORTS)
    common = dict(buffer_size=32, service_time_s=6e-6)

    if slot_size_s is None:
        system = MultiPairSystem(
            env, machine, "Mutex", traces,
            PCConfig(max_response_latency_s=64e-3, **common),
        ).start()
    else:
        system = PBPLSystem(
            env, machine, traces,
            PBPLConfig(
                slot_size_s=slot_size_s,
                max_response_latency_s=8 * slot_size_s,
                **common,
            ),
        ).start()

    env.run(until=DURATION_S)
    ledger.settle()
    agg = system.aggregate_stats()
    return {
        "power_mw": ledger.average_power_w(DURATION_S) * 1000,
        "p99_ms": agg.latency_percentile(99) * 1000,
        "wakeups": machine.core(0).total_wakeups / DURATION_S,
        "forwarded": agg.consumed,
    }


def main() -> None:
    print(
        f"router: {N_PORTS} ports × {PPS_PER_PORT:.0f} pps, "
        f"{DURATION_S:g}s of bursty traffic\n"
    )
    header = f"{'config':<14}{'power mW':>10}{'p99 delay ms':>14}{'wakeups/s':>11}{'pkts':>8}"
    print(header)
    print("-" * len(header))

    baseline = run(None)
    print(
        f"{'Mutex':<14}{baseline['power_mw']:>10.1f}{baseline['p99_ms']:>14.3f}"
        f"{baseline['wakeups']:>11.0f}{baseline['forwarded']:>8d}"
    )
    curve = []
    for slot_ms in (1.0, 2.0, 5.0, 10.0):
        r = run(slot_ms * 1e-3)
        curve.append((slot_ms, r))
        print(
            f"{f'PBPL Δ={slot_ms:g}ms':<14}{r['power_mw']:>10.1f}{r['p99_ms']:>14.3f}"
            f"{r['wakeups']:>11.0f}{r['forwarded']:>8d}"
        )

    print("\nthe dial, anchored at the latency-optimal Mutex baseline:")
    for slot_ms, r in curve:
        saved = baseline["power_mw"] - r["power_mw"]
        delay = r["p99_ms"] - baseline["p99_ms"]
        print(
            f"  Δ={slot_ms:>4g}ms: save {saved:7.1f} mW at the cost of "
            f"{delay:6.2f} ms p99 queueing delay "
            f"({saved / delay:6.1f} mW per ms)"
        )
    print(
        "\nalmost all of the saving arrives with the first millisecond of "
        "allowed delay —\nexactly the paper's 'bounded-latency batching is "
        "an acceptable power-efficient solution'."
    )


if __name__ == "__main__":
    main()
