#!/usr/bin/env python
"""Resource-aware tuning: the paper's §VIII extension, hands-on.

The paper's closing research ask — "a generic resource-aware
producer-consumer algorithm, where power, memory, CPU overhead,
throughput, timing, constraints, etc., need to be taken into account
simultaneously" — is implemented in ``repro.core.resource_aware``: the
slot-choice cost generalises from energy-per-item (Eq. 8) to a weighted
sum of normalised resource costs with a closed-form optimal drain gap.

This example plays SRE for an event pipeline with three different
deployment profiles and shows how one weight vector reshapes the same
system:

* ``datacenter``  — power is the bill; latency has slack
* ``interactive`` — tail latency rules; power is secondary
* ``embedded``    — RAM is scarce; keep buffers tiny, power still counts

Run:  python examples/resource_aware_tuning.py
"""

from repro.core import ResourceAwareConfig, ResourceAwareSystem, ResourceWeights
from repro.cpu import Machine
from repro.impls import phase_shifted_traces
from repro.power import EnergyLedger, PowerModel
from repro.sim import Environment, RandomStreams
from repro.workloads import worldcup_like_trace

DURATION_S = 3.0
N_PAIRS = 5

PROFILES = {
    "datacenter": ResourceWeights(power=1.0, latency=0.1, memory=0.0, cpu=0.2),
    "interactive": ResourceWeights(power=0.2, latency=5.0, memory=0.0, cpu=0.1),
    "embedded": ResourceWeights(power=1.0, latency=0.5, memory=6.0, cpu=0.5),
}


def run(profile: str):
    env = Environment()
    streams = RandomStreams(seed=21)
    machine = Machine(env, n_cores=2, streams=streams)
    model = PowerModel()
    ledger = EnergyLedger(env, model)
    machine.add_listener(ledger)
    for core in machine.cores:
        ledger.watch(core)

    base = worldcup_like_trace(2200.0, DURATION_S, streams.stream("events"))
    traces = phase_shifted_traces(base, N_PAIRS)
    config = ResourceAwareConfig(
        buffer_size=25,
        slot_size_s=2.5e-3,
        max_response_latency_s=40e-3,
        weights=PROFILES[profile],
    )
    system = ResourceAwareSystem(env, machine, traces, config).start()
    env.run(until=DURATION_S)
    ledger.settle()
    agg = system.aggregate_stats()
    return {
        "power_mw": ledger.average_power_w(DURATION_S) * 1000,
        "mean_ms": agg.mean_latency_s * 1000,
        "p99_ms": agg.latency_percentile(99) * 1000,
        "avg_buffer": system.average_buffer_capacity(),
        "wakeups": machine.core(0).total_wakeups / DURATION_S,
    }


def main() -> None:
    print(
        f"one pipeline ({N_PAIRS} event streams), three deployment "
        "profiles — same code,\ndifferent ResourceWeights:\n"
    )
    header = (
        f"{'profile':<13}{'power mW':>10}{'mean lat ms':>13}{'p99 ms':>8}"
        f"{'avg buffer':>12}{'wakeups/s':>11}"
    )
    print(header)
    print("-" * len(header))
    results = {}
    for profile in PROFILES:
        r = run(profile)
        results[profile] = r
        print(
            f"{profile:<13}{r['power_mw']:>10.1f}{r['mean_ms']:>13.2f}"
            f"{r['p99_ms']:>8.2f}{r['avg_buffer']:>12.1f}{r['wakeups']:>11.0f}"
        )
    print()
    dc, ia, em = results["datacenter"], results["interactive"], results["embedded"]
    print(
        f"interactive cuts mean latency {dc['mean_ms'] / ia['mean_ms']:.1f}x "
        f"vs datacenter at +{ia['power_mw'] - dc['power_mw']:.0f} mW;"
    )
    print(
        f"embedded holds buffers to {em['avg_buffer']:.1f} slots on average "
        f"(datacenter: {dc['avg_buffer']:.1f})."
    )


if __name__ == "__main__":
    main()
