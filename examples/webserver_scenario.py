#!/usr/bin/env python
"""Web-server scenario: worker threads consuming HTTP request queues.

The paper's motivating case (§I): "HTTP requests produced by web
browsers are stored in buffers that are consumed and processed by
multiple threads in a web server", with the Google observation that
servers live at 10–50 % utilisation — the regime where wakeup costs
dominate. This example:

1. synthesises a day-compressed request log with two traffic spikes
   (think: two World Cup kick-offs);
2. runs eight worker queues under Mutex, BP and PBPL;
3. reports power, wakeups, utilisation and request latency percentiles
   — the operator's actual dashboard.

Run:  python examples/webserver_scenario.py
"""

from repro.core import PBPLConfig, PBPLSystem
from repro.cpu import Machine
from repro.impls import MultiPairSystem, PCConfig, phase_shifted_traces
from repro.power import EnergyLedger, PowerModel
from repro.sim import Environment, RandomStreams
from repro.workloads import worldcup_like_trace

DURATION_S = 4.0
N_WORKERS = 8
MEAN_RPS = 1500.0  # mean requests/s per worker queue


def build_workload(streams: RandomStreams):
    log = worldcup_like_trace(
        MEAN_RPS,
        DURATION_S,
        streams.stream("http-log"),
        n_flash_crowds=2,
        flash_magnitude=5.0,
        diurnal_depth=0.5,
    )
    # Each worker's queue sees the log phase-shifted, as if requests were
    # hash-balanced across workers with time-varying skew.
    return phase_shifted_traces(log, N_WORKERS)


def run(kind: str):
    env = Environment()
    streams = RandomStreams(seed=7)
    machine = Machine(env, n_cores=2, streams=streams)
    model = PowerModel()
    ledger = EnergyLedger(env, model)
    machine.add_listener(ledger)
    for core in machine.cores:
        ledger.watch(core)
    traces = build_workload(streams)

    common = dict(
        buffer_size=32,
        service_time_s=8e-6,
        max_response_latency_s=50e-3,  # a 50 ms SLA on queueing delay
    )
    if kind == "PBPL":
        system = PBPLSystem(
            env, machine, traces, PBPLConfig(slot_size_s=5e-3, **common)
        ).start()
    else:
        system = MultiPairSystem(
            env, machine, kind, traces, PCConfig(**common)
        ).start()

    env.run(until=DURATION_S)
    ledger.settle()
    agg = system.aggregate_stats()
    return {
        "power_mw": ledger.average_power_w(DURATION_S) * 1000,
        "wakeups": machine.core(0).total_wakeups / DURATION_S,
        "util_pct": machine.core(0).total_busy_s / DURATION_S * 100,
        "served": agg.consumed,
        "p99_ms": agg.latency_percentile(99) * 1000,
        "max_ms": agg.max_latency_s * 1000,
        "sla_misses": agg.deadline_misses,
    }


def main() -> None:
    print(
        f"web server: {N_WORKERS} worker queues, "
        f"~{MEAN_RPS * N_WORKERS:.0f} req/s aggregate, "
        f"{DURATION_S:g}s compressed trace\n"
    )
    header = (
        f"{'impl':<7}{'power mW':>10}{'wakeups/s':>11}{'util %':>8}"
        f"{'served':>9}{'p99 ms':>8}{'max ms':>8}{'SLA miss':>10}"
    )
    print(header)
    print("-" * len(header))
    rows = {}
    for kind in ("Mutex", "BP", "PBPL"):
        r = run(kind)
        rows[kind] = r
        print(
            f"{kind:<7}{r['power_mw']:>10.1f}{r['wakeups']:>11.0f}"
            f"{r['util_pct']:>8.1f}{r['served']:>9d}{r['p99_ms']:>8.2f}"
            f"{r['max_ms']:>8.1f}{r['sla_misses']:>10d}"
        )
    print()
    saving = 1 - rows["PBPL"]["power_mw"] / rows["Mutex"]["power_mw"]
    print(
        f"PBPL serves the same load with {saving * 100:.0f}% less power than "
        "Mutex,\nwhile keeping p99 queueing delay at "
        f"{rows['PBPL']['p99_ms']:.1f} ms (SLA: 50 ms)."
    )
    print(
        "Note the utilisation column: all implementations do the same work —\n"
        "the power gap is purely *how* the CPU sleeps between requests."
    )


if __name__ == "__main__":
    main()
