#!/usr/bin/env python
"""Runtime-monitoring scenario: heterogeneous event streams, one budget.

The paper's second motivating case (§I): "events produced by the
environment or internal system processes are consumed and processed by
a runtime monitor". Monitors watch wildly different sources — a syscall
tracer sees thousands of events per second, a watchdog sees a few — and
this is where PBPL's *dynamic buffer resizing* earns its keep: the hot
monitor borrows buffer space that the cold monitors are not using, so
it can keep latching onto shared wakeups instead of overflowing.

This example runs four monitors (syscall tracer, network auditor, GC
profiler, hardware watchdog) and shows each monitor's buffer allocation
breathing over time, plus what resizing buys in wakeups.

Run:  python examples/runtime_monitoring.py
"""

import numpy as np

from repro.core import PBPLConfig, PBPLSystem
from repro.cpu import Machine
from repro.power import EnergyLedger, PowerModel
from repro.sim import Environment, RandomStreams
from repro.workloads import Trace, mmpp_trace, poisson_trace

DURATION_S = 4.0
B0 = 25  # base buffer slots per monitor

MONITORS = ("syscall-tracer", "net-auditor", "gc-profiler", "hw-watchdog")


def build_event_streams(streams: RandomStreams) -> list[Trace]:
    """Four sources with very different rates and burst profiles."""
    return [
        # Syscall tracing: heavy and bursty (app phases).
        mmpp_trace(
            [1500.0, 9000.0], [0.4, 0.15], DURATION_S, streams.stream("syscalls")
        ),
        # Network audit events: moderate, bursty on connection storms.
        mmpp_trace([300.0, 2500.0], [0.6, 0.1], DURATION_S, streams.stream("net")),
        # GC profiler: periodic-ish moderate load.
        poisson_trace(400.0, DURATION_S, streams.stream("gc")),
        # Hardware watchdog: nearly silent.
        poisson_trace(20.0, DURATION_S, streams.stream("watchdog")),
    ]


def run(enable_resizing: bool):
    env = Environment()
    streams = RandomStreams(seed=11)
    machine = Machine(env, n_cores=2, streams=streams)
    model = PowerModel()
    ledger = EnergyLedger(env, model)
    machine.add_listener(ledger)
    for core in machine.cores:
        ledger.watch(core)

    system = PBPLSystem(
        env,
        machine,
        build_event_streams(streams),
        PBPLConfig(
            buffer_size=B0,
            slot_size_s=5e-3,
            max_response_latency_s=40e-3,
            enable_resizing=enable_resizing,
        ),
    ).start()

    # Sample each monitor's buffer entitlement over time.
    samples = {name: [] for name in MONITORS}
    for t in np.arange(0.25, DURATION_S + 1e-9, 0.25):
        env.run(until=float(t))
        for name, consumer in zip(MONITORS, system.consumers):
            samples[name].append(consumer.buffer.capacity)
    ledger.settle()
    agg = system.aggregate_stats()
    return system, samples, agg, ledger.average_power_w(DURATION_S)


def main() -> None:
    print(f"runtime monitoring: 4 monitors, shared pool of {B0 * 4} slots\n")

    system, samples, agg, power = run(enable_resizing=True)
    print("buffer entitlement per monitor, sampled every 250 ms:")
    for name in MONITORS:
        spark = " ".join(f"{c:3d}" for c in samples[name])
        print(f"  {name:<15} {spark}")
    print(
        f"\npool invariant holds: "
        f"{system.pool.allocated_slots} allocated ≤ {system.pool.total_slots} total; "
        f"{system.pool.slots_lent} slots were lent overall"
    )
    print(
        f"with resizing:    {agg.scheduled_wakeups} scheduled + "
        f"{agg.overflow_wakeups} overflow wakeups, "
        f"{agg.consumed} events handled, {power * 1000:.0f} mW"
    )

    _, _, agg_frozen, power_frozen = run(enable_resizing=False)
    print(
        f"without resizing: {agg_frozen.scheduled_wakeups} scheduled + "
        f"{agg_frozen.overflow_wakeups} overflow wakeups, "
        f"{agg_frozen.consumed} events handled, {power_frozen * 1000:.0f} mW"
    )

    saved = agg_frozen.overflow_wakeups - agg.overflow_wakeups
    print(
        f"\nelastic buffers absorbed bursts worth {saved} overflow wakeups "
        "that frozen\nbuffers paid for — the hot tracer borrowed what the "
        "watchdog never used."
    )


if __name__ == "__main__":
    main()
