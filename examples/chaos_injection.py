#!/usr/bin/env python
"""Chaos injection: break the rig on purpose, watch PBPL degrade gracefully.

The paper assumes a well-behaved rig: producers follow the trace, every
armed timer signal arrives, consumers keep their measured service
times. Real deployments get producer stalls, interrupt storms, lost
timer wakeups and noisy-neighbour slowdowns — so this reproduction
ships a fault-injection layer (`repro.faults`) plus three degradation
mechanisms:

* overflow policies on every buffer (here: `shed-to-deadline`, which
  discards only items whose response-latency budget already expired);
* a slot-recovery watchdog in the core manager (a lost slot signal is
  re-fired at most one slot Δ late, with bounded exponential backoff);
* a hardened rate predictor (outlier clamping + fast re-convergence
  after regime changes).

The demo runs the acceptance gauntlet — a producer stall, then a lost-
signal window, then a burst storm — twice: once with every safeguard
armed and once with the watchdog disabled, then prints both scorecards.
Same seed, same report, every time.

Run:  python examples/chaos_injection.py
"""

from repro.faults import (
    BurstStorm,
    FaultPlan,
    LostSignals,
    ProducerStall,
    run_scenario,
)
from repro.faults.chaos import ChaosScenario
from repro.harness.params import StandardParams

DURATION_S = 2.0
#: One consumer: a lone consumer has no neighbour's reservation churn to
#: accidentally rescue its manager, so the watchdog is the only safety net.
CONSUMERS = 1


def gauntlet(T: float, M: int) -> FaultPlan:
    return FaultPlan(
        [
            ProducerStall(start_s=0.15 * T, duration_s=0.10 * T),
            LostSignals(start_s=0.35 * T, duration_s=0.25 * T, prob=1.0),
            BurstStorm(start_s=0.70 * T, duration_s=0.10 * T, factor=3.0),
        ]
    )


def describe(label, r):
    print(f"\n{label}")
    print(f"  verdict            {r.verdict}")
    print(
        f"  items              {r.produced} produced = {r.consumed} consumed "
        f"+ {r.items_shed} shed + {r.buffered} buffered "
        f"({'balanced' if r.conservation_ok else 'LEAKED'})"
    )
    print(
        f"  worst latency      {r.max_latency_s * 1000:.2f} ms "
        f"(bound L+Δ = {r.latency_bound_s * 1000:.2f} ms, "
        f"{r.deadline_misses} misses)"
    )
    print(
        f"  lost slot signals  {r.lost_signals} "
        f"({r.watchdog_recoveries} recovered by the watchdog)"
    )
    if r.power_under_faults_w is not None:
        print(
            f"  power              {r.power_w * 1000:.1f} mW overall, "
            f"{r.power_under_faults_w * 1000:.1f} mW inside fault windows"
        )


def main() -> None:
    params = StandardParams(duration_s=DURATION_S, seed=2014)
    scenario = ChaosScenario(
        "gauntlet", "stall → lost signals → burst storm", gauntlet
    )
    print("Chaos injection: stall → lost signals → burst storm")
    print(f"({CONSUMERS} consumer, {DURATION_S:g}s, seed {params.seed})")
    for fault in gauntlet(DURATION_S, CONSUMERS):
        print(f"  - {fault.describe()}")

    armed = run_scenario(scenario, params, CONSUMERS)
    describe("With every safeguard armed:", armed)

    disarmed = run_scenario(
        scenario, params, CONSUMERS, config_overrides={"watchdog_grace_s": 0.0}
    )
    describe("Watchdog disabled (legacy failure mode):", disarmed)

    print(
        "\nThe watchdog turns lost slot signals from unbounded lateness "
        "into at most one slot Δ of it,\nand shed-to-deadline makes every "
        "discarded item show up in the accounting above."
    )


if __name__ == "__main__":
    main()
